(* Tests for simulator internals: cost accounting, async engine timing,
   time-warp waits, fences, the persistent work queue, cp.async rings,
   trace collection, and the launch/extrapolation model. *)

open Tawa_tensor
open Tawa_ir
open Tawa_machine
open Tawa_gpusim

let mk_program ?(allocs = []) ?(num_mbarriers = 0) ?(arrive = [||]) ?(num_rings = 0)
    ?(persistent = false) ?(param_tys = []) streams =
  {
    Isa.name = "t";
    param_tys;
    streams;
    allocs;
    num_mbarriers;
    mbar_arrive_counts = arrive;
    mbar_resettable = Array.map (fun _ -> true) arrive;
    num_rings;
    persistent;
    grid_axes = 3;
    prov = Isa.no_prov;
  }

let stream ?(role = Op.Consumer) ?(coop = 1) instrs =
  { Isa.role; coop; instrs = Array.of_list instrs }

let cfg = Config.h100

let run_program ?(params = []) ?(pop = Launch.no_queue) program =
  let cta =
    Sim.create ~cfg ~program ~params ~num_programs:[| 4; 4; 1 |] ~pop_global:pop
      ()
  in
  (Sim.run cta, cta)

(* ------------------------------------------------------------------ *)
(* Scalar execution + costs                                            *)
(* ------------------------------------------------------------------ *)

let test_scalar_alu () =
  let p =
    mk_program
      [ stream
          [ Isa.Mov { dst = 0; src = Isa.Imm 5 };
            Isa.Alu { op = Op.Add; dst = 1; a = Isa.Reg 0; b = Isa.Imm 3 };
            Isa.Alu { op = Op.Mul; dst = 2; a = Isa.Reg 1; b = Isa.Reg 1 };
            Isa.Exit ] ]
  in
  let o, cta = run_program p in
  Alcotest.(check bool) "r2 = 64" true (Sim.reg_read cta.Sim.wgs.(0) 2 = Sim.Rint 64);
  (* Three scalar ops at scalar_cycles each. *)
  Alcotest.(check (float 1e-9)) "cycles" (3.0 *. cfg.Config.scalar_cycles) o.Sim.cycles

let test_branching_loop () =
  (* r0 counts 0..9 via a machine-level loop. *)
  let p =
    mk_program
      [ stream
          [ (* 0 *) Isa.Mov { dst = 0; src = Isa.Imm 0 };
            (* 1 *) Isa.Cmp { op = Op.Lt; dst = 1; a = Isa.Reg 0; b = Isa.Imm 10 };
            (* 2 *) Isa.Brz { cond = Isa.Reg 1; target = 5 };
            (* 3 *) Isa.Alu { op = Op.Add; dst = 0; a = Isa.Reg 0; b = Isa.Imm 1 };
            (* 4 *) Isa.Bra { target = 1 };
            (* 5 *) Isa.Exit ] ]
  in
  let _, cta = run_program p in
  Alcotest.(check bool) "loop counted to 10" true (Sim.reg_read cta.Sim.wgs.(0) 0 = Sim.Rint 10)

let test_div_by_zero_reported () =
  let p =
    mk_program
      [ stream [ Isa.Alu { op = Op.Div; dst = 0; a = Isa.Imm 1; b = Isa.Imm 0 }; Isa.Exit ] ]
  in
  Alcotest.(check bool) "div by zero" true
    (try
       ignore (run_program p);
       false
     with Sim.Sim_error msg -> Astring.String.is_infix ~affix:"div" msg)

(* ------------------------------------------------------------------ *)
(* Async engines and time-warp                                         *)
(* ------------------------------------------------------------------ *)

let test_tma_engine_serializes () =
  (* Two loads back to back: the engine is busy bytes/bw each; the
     second completes after the first. *)
  let rows = 64 and cols = 64 in
  let bytes = Float.of_int (rows * cols * 2) in
  let p =
    mk_program ~num_mbarriers:2 ~arrive:[| 1; 1 |]
      ~allocs:[ { Isa.alloc_id = 0; slots = 2; bytes_per_slot = rows * cols * 2; label = "t" } ]
      ~param_tys:[ Tawa_ir.Types.ptr Dtype.F16 ]
      [ stream
          [ Isa.Mkdesc { dst = 1; ptr = Isa.Reg 0; sizes = []; strides = []; dtype = Dtype.F16 };
            Isa.Tma_load
              { desc = Isa.Reg 1; offs = [ Isa.Imm 0; Isa.Imm 0 ];
                dst = { Isa.alloc = 0; slot = Isa.Imm 0 }; rows; cols; dtype = Dtype.F16;
                full = { Isa.base = 0; index = Isa.Imm 0 } };
            Isa.Tma_load
              { desc = Isa.Reg 1; offs = [ Isa.Imm 0; Isa.Imm 0 ];
                dst = { Isa.alloc = 0; slot = Isa.Imm 1 }; rows; cols; dtype = Dtype.F16;
                full = { Isa.base = 1; index = Isa.Imm 0 } };
            (* Wait for the second: completion ~ 2*(bytes/bw) + latency. *)
            Isa.Mbar_wait { bar = { Isa.base = 1; index = Isa.Imm 0 }; target = Isa.Imm 1 };
            Isa.Exit ] ]
  in
  let o, _ = run_program ~params:[ Sim.Rnone ] p in
  (* The first issue starts the engine; the second issue's WG-side cost
     overlaps the engine's busy window, so it does not extend the
     critical path. *)
  let expect =
    20.0 (* mkdesc *)
    +. cfg.Config.tma_issue_cycles (* first issue *)
    +. (2.0 *. bytes /. cfg.Config.tma_bytes_per_cycle)
    +. cfg.Config.tma_latency +. cfg.Config.mbar_cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "serialized completions (%.0f vs %.0f)" o.Sim.cycles expect)
    true
    (Float.abs (o.Sim.cycles -. expect) < 2.0);
  Alcotest.(check bool) "tma busy accounted" true (o.Sim.stats.Sim.tma_count = 2)

let test_wgmma_wait_time_warps () =
  (* Issue one wgmma, spin on cheap scalar work, then wait: the wait
     must advance the clock to the MMA completion, not double-count. *)
  let p =
    mk_program
      [ stream
          [ Isa.Mov { dst = 0; src = Isa.Imm 0 };
            Isa.Wgmma { a = Isa.Wreg 0; b = Isa.Wreg 0; acc = 1; m = 128; n = 128; k = 64;
                        dtype = Dtype.F16 };
            Isa.Wgmma_commit;
            Isa.Wgmma_wait 0;
            Isa.Exit ] ]
  in
  let o, _ = run_program p in
  let dur = 2.0 *. 128.0 *. 128.0 *. 64.0 /. (cfg.Config.tc_flops_per_cycle_f16 *. cfg.Config.tc_efficiency) in
  Alcotest.(check bool) "clock at mma completion" true
    (o.Sim.cycles >= dur && o.Sim.cycles < dur +. 30.0)

let test_wgmma_pending_bound () =
  (* wait(1) must leave one group in flight: total time for two
     back-to-back MMAs with wait(1) between is ~one MMA, not two. *)
  let mma =
    Isa.Wgmma { a = Isa.Wreg 0; b = Isa.Wreg 0; acc = 1; m = 128; n = 128; k = 64;
                dtype = Dtype.F16 }
  in
  let p =
    mk_program
      [ stream [ mma; Isa.Wgmma_commit; Isa.Wgmma_wait 1; mma; Isa.Wgmma_commit; Isa.Exit ] ]
  in
  let o, _ = run_program p in
  let dur = 2.0 *. 128.0 *. 128.0 *. 64.0 /. (cfg.Config.tc_flops_per_cycle_f16 *. cfg.Config.tc_efficiency) in
  Alcotest.(check bool) "second mma left pending" true (o.Sim.cycles < dur)

(* WG1 blocks on a barrier that WG0 arrives on later: the sim must wake
   WG1 at WG0's arrival time. *)
let test_mbar_wakeup () =
  let burn n = List.init n (fun _ -> Isa.Alu { op = Op.Add; dst = 0; a = Isa.Reg 0; b = Isa.Imm 1 }) in
  let p =
    mk_program ~num_mbarriers:1 ~arrive:[| 1 |]
      [ stream ~role:Op.Producer
          (burn 50 @ [ Isa.Mbar_arrive { Isa.base = 0; index = Isa.Imm 0 }; Isa.Exit ]);
        stream
          [ Isa.Mbar_wait { bar = { Isa.base = 0; index = Isa.Imm 0 }; target = Isa.Imm 1 };
            Isa.Exit ] ]
  in
  let o, cta = run_program p in
  let arrive_time = (50.0 *. cfg.Config.scalar_cycles) +. cfg.Config.mbar_cycles in
  Alcotest.(check bool) "consumer woke at arrival" true
    (Float.abs (cta.Sim.wgs.(1).Sim.time -. (arrive_time +. cfg.Config.mbar_cycles)) < 1.0);
  ignore o

let test_fence_synchronizes () =
  let burn n = List.init n (fun _ -> Isa.Alu { op = Op.Add; dst = 0; a = Isa.Reg 0; b = Isa.Imm 1 }) in
  let p =
    mk_program
      [ stream ~role:Op.Producer (burn 100 @ [ Isa.Fence; Isa.Exit ]);
        stream (burn 2 @ [ Isa.Fence; Isa.Exit ]) ]
  in
  let _, cta = run_program p in
  (* Both WGs leave the fence at the same time: max arrival + fence. *)
  Alcotest.(check (float 1.0)) "wg times equal"
    cta.Sim.wgs.(0).Sim.time cta.Sim.wgs.(1).Sim.time

let test_workq_shared_across_wgs () =
  (* Two WGs of one CTA must see the SAME popped values per round. *)
  let q = Launch.queue_of_list [ 7; 11; -1 ] in
  let body =
    [ Isa.Workq_pop { dst = 1 };
      Isa.Workq_pop { dst = 2 };
      Isa.Workq_pop { dst = 3 };
      Isa.Exit ]
  in
  let p = mk_program [ stream ~role:Op.Producer body; stream body ] in
  let _, cta = run_program ~pop:q p in
  List.iter
    (fun w ->
      Alcotest.(check bool) "pop 0" true (Sim.reg_read w 1 = Sim.Rint 7);
      Alcotest.(check bool) "pop 1" true (Sim.reg_read w 2 = Sim.Rint 11);
      Alcotest.(check bool) "pop drained" true (Sim.reg_read w 3 = Sim.Rint (-1)))
    (Array.to_list cta.Sim.wgs)

let test_workq_decodes_pid () =
  let q = Launch.queue_of_list [ 5 ] in
  let p =
    mk_program
      [ stream
          [ Isa.Workq_pop { dst = 1 }; Isa.Pid { dst = 2; axis = 0 };
            Isa.Pid { dst = 3; axis = 1 }; Isa.Exit ] ]
  in
  let _, cta = run_program ~pop:q p in
  (* grid is 4x4: linear 5 -> (x=1, y=1). *)
  Alcotest.(check bool) "pid x" true (Sim.reg_read cta.Sim.wgs.(0) 2 = Sim.Rint 1);
  Alcotest.(check bool) "pid y" true (Sim.reg_read cta.Sim.wgs.(0) 3 = Sim.Rint 1)

let test_cp_ring_wait () =
  let p =
    mk_program ~num_rings:1
      ~allocs:[ { Isa.alloc_id = 0; slots = 2; bytes_per_slot = 1024; label = "r" } ]
      ~param_tys:[ Tawa_ir.Types.ptr Dtype.F16 ]
      [ stream
          [ Isa.Mkdesc { dst = 1; ptr = Isa.Reg 0; sizes = []; strides = []; dtype = Dtype.F16 };
            Isa.Cp_async
              { ring = 0; desc = Isa.Reg 1; offs = [ Isa.Imm 0; Isa.Imm 0 ];
                dst = { Isa.alloc = 0; slot = Isa.Imm 0 }; rows = 16; cols = 32;
                dtype = Dtype.F16; last = true };
            Isa.Cp_wait_ring { ring = 0; target = Isa.Imm 1 };
            Isa.Exit ] ]
  in
  let o, _ = run_program ~params:[ Sim.Rnone ] p in
  Alcotest.(check bool) "waited for copy + latency" true (o.Sim.cycles > cfg.Config.tma_latency)

let test_sync_reset_clears_barriers () =
  let p =
    mk_program ~num_mbarriers:1 ~arrive:[| 1 |]
      [ stream
          [ Isa.Mbar_arrive { Isa.base = 0; index = Isa.Imm 0 };
            Isa.Sync_reset;
            (* After reset, phase target 1 must block again -> use
               try-style: arrive once more so the wait passes. *)
            Isa.Mbar_arrive { Isa.base = 0; index = Isa.Imm 0 };
            Isa.Mbar_wait { bar = { Isa.base = 0; index = Isa.Imm 0 }; target = Isa.Imm 1 };
            Isa.Exit ] ]
  in
  let _, cta = run_program p in
  Alcotest.(check int) "one completion after reset" 1
    (Mbarrier.completions cta.Sim.mbars.(0))

let test_trace_collection () =
  let tcfg = { cfg with Config.collect_trace = true } in
  let p =
    mk_program
      [ stream
          [ Isa.Mov { dst = 0; src = Isa.Imm 0 };
            Isa.Wgmma { a = Isa.Wreg 0; b = Isa.Wreg 0; acc = 1; m = 64; n = 64; k = 64;
                        dtype = Dtype.F16 };
            Isa.Wgmma_commit; Isa.Wgmma_wait 0; Isa.Exit ] ]
  in
  let cta =
    Sim.create ~cfg:tcfg ~program:p ~params:[] ~num_programs:[| 1; 1; 1 |]
      ~pop_global:Launch.no_queue ()
  in
  ignore (Sim.run cta);
  Alcotest.(check bool) "tc event recorded" true
    (List.exists (fun (u, _, _, _) -> u = "TensorCore") cta.Sim.events)

(* ------------------------------------------------------------------ *)
(* Launch model                                                        *)
(* ------------------------------------------------------------------ *)

let test_estimate_wave_scaling () =
  (* Doubling the grid (in full waves) roughly doubles non-persistent
     time net of the fixed launch overhead. *)
  let p = mk_program [ stream (List.init 200 (fun _ -> Isa.Nop) @ [ Isa.Exit ]) ] in
  let t1 = Launch.estimate ~cfg p ~params:[] ~grid:(cfg.Config.num_sms, 1, 1) ~flops:1.0 in
  let t2 = Launch.estimate ~cfg p ~params:[] ~grid:(2 * cfg.Config.num_sms, 1, 1) ~flops:1.0 in
  let net1 = t1.Launch.cycles -. cfg.Config.launch_overhead_cycles in
  let net2 = t2.Launch.cycles -. cfg.Config.launch_overhead_cycles in
  Alcotest.(check (float 1.0)) "2x waves" (2.0 *. net1) net2

let test_estimate_partial_wave_quantization () =
  (* 1 CTA and num_sms CTAs cost the same (one wave). *)
  let p = mk_program [ stream (List.init 50 (fun _ -> Isa.Nop) @ [ Isa.Exit ]) ] in
  let t1 = Launch.estimate ~cfg p ~params:[] ~grid:(1, 1, 1) ~flops:1.0 in
  let t2 = Launch.estimate ~cfg p ~params:[] ~grid:(cfg.Config.num_sms, 1, 1) ~flops:1.0 in
  Alcotest.(check (float 0.01)) "wave quantized" t1.Launch.cycles t2.Launch.cycles

let test_estimate_persistent_share () =
  (* A persistent program over num_sms tiles runs each tile once per
     SM: one pop round plus the drain round. *)
  let body = [ Isa.Workq_pop { dst = 1 } ] in
  let p =
    mk_program ~persistent:true
      [ { Isa.role = Op.Consumer; coop = 1;
          instrs =
            [| Isa.Workq_pop { dst = 1 };
               Isa.Cmp { op = Op.Lt; dst = 2; a = Isa.Reg 1; b = Isa.Imm 0 };
               Isa.Brnz { cond = Isa.Reg 2; target = 5 };
               Isa.Nop;
               Isa.Bra { target = 0 };
               Isa.Exit |] } ]
  in
  ignore body;
  let t = Launch.estimate ~cfg p ~params:[] ~grid:(cfg.Config.num_sms, 1, 1) ~flops:1.0 in
  (* 1 work item + 1 drained pop. *)
  Alcotest.(check bool) "two pops worth of time" true
    (t.Launch.cycles
    < cfg.Config.launch_overhead_cycles +. (2.5 *. cfg.Config.workq_pop_cycles) +. 50.0)

let suites =
  [
    ( "gpusim.exec",
      [
        Alcotest.test_case "scalar alu" `Quick test_scalar_alu;
        Alcotest.test_case "branching loop" `Quick test_branching_loop;
        Alcotest.test_case "div by zero" `Quick test_div_by_zero_reported;
      ] );
    ( "gpusim.async",
      [
        Alcotest.test_case "tma engine serializes" `Quick test_tma_engine_serializes;
        Alcotest.test_case "wgmma wait time-warps" `Quick test_wgmma_wait_time_warps;
        Alcotest.test_case "wgmma pending bound" `Quick test_wgmma_pending_bound;
        Alcotest.test_case "mbar wakeup" `Quick test_mbar_wakeup;
        Alcotest.test_case "fence" `Quick test_fence_synchronizes;
        Alcotest.test_case "workq shared" `Quick test_workq_shared_across_wgs;
        Alcotest.test_case "workq pid decode" `Quick test_workq_decodes_pid;
        Alcotest.test_case "cp ring wait" `Quick test_cp_ring_wait;
        Alcotest.test_case "sync reset" `Quick test_sync_reset_clears_barriers;
        Alcotest.test_case "trace collection" `Quick test_trace_collection;
      ] );
    ( "gpusim.launch",
      [
        Alcotest.test_case "wave scaling" `Quick test_estimate_wave_scaling;
        Alcotest.test_case "wave quantization" `Quick test_estimate_partial_wave_quantization;
        Alcotest.test_case "persistent share" `Quick test_estimate_persistent_share;
      ] );
  ]
