(* Simulation-mode differential suite (PR 6).

   Three invariants of the hardware-fast simulation levers:

   1. modes.differential — timing-only execution is bit-identical to
      functional execution on everything the timing model reports:
      cycles, engine stats, and the PR 5 stall-attribution bucket
      floats, on pinned small shapes, for both CTA engines.

   2. modes.cachekey — the decode cache keys entries on
      (program fingerprint x cost-model digest x execution mode
      [x timing-opt flag]), so functional and timing decodes of one
      program never alias, and eviction works for the new key shape.

   3. modes.replication — symmetry replication is bit-identical when
      granted, and refuses (full-simulation fallback, one-time
      warning) on CTA-id-dependent timing, arefcheck violations,
      persistent programs, and differing cost inputs. *)

open Tawa_tensor
open Tawa_machine
open Tawa_core
open Tawa_gpusim
module Replicate = Tawa_analysis.Replicate
module Registry = Tawa_obs.Registry

let small_tiles = { Tawa_frontend.Kernels.block_m = 16; block_n = 16; block_k = 8 }

let compile ?(d = 2) ?(p = 2) ?(coop = 1) ?(persistent = false) ?(coarse = false) k =
  Flow.compile
    ~options:
      { Flow.default_options with aref_depth = d; mma_depth = p; num_consumer_wgs = coop; persistent;
        use_coarse = coarse }
    k

let ws_gemm ?d ?p ?coop ?persistent () =
  compile ?d ?p ?coop ?persistent (Tawa_frontend.Kernels.gemm ~tiles:small_tiles ())

(* ------------------------------------------------------------------ *)
(* 1. Timing-only vs functional: cycles and stall buckets identical    *)
(* ------------------------------------------------------------------ *)

let profiles_equal (a : Sim.profile) (b : Sim.profile) =
  a.Sim.wall = b.Sim.wall
  && a.Sim.wg_profs = b.Sim.wg_profs
  && a.Sim.chan_profs = b.Sim.chan_profs

(* Everything the timing model reports must match bit for bit; the
   functional payload (tile values, buffer writes) is exactly what
   timing mode is allowed to drop. *)
let timing_equal (a : Sim.outcome) (b : Sim.outcome) =
  a.Sim.cycles = b.Sim.cycles
  && a.Sim.instructions = b.Sim.instructions
  && a.Sim.stats.Sim.tc_busy = b.Sim.stats.Sim.tc_busy
  && a.Sim.stats.Sim.tma_busy = b.Sim.stats.Sim.tma_busy
  && a.Sim.stats.Sim.tma_bytes = b.Sim.stats.Sim.tma_bytes
  && a.Sim.stats.Sim.wgmma_count = b.Sim.stats.Sim.wgmma_count
  && a.Sim.stats.Sim.tma_count = b.Sim.stats.Sim.tma_count
  && a.Sim.stats.Sim.steps = b.Sim.stats.Sim.steps
  && profiles_equal a.Sim.profile b.Sim.profile

let run ~mode ~engine ?(pid = [| 0; 0; 0 |]) ?(grid = [| 2; 2; 1 |])
    ?(mk_pop = fun () -> Launch.no_queue) program ~params =
  Engine.run_cta
    ~cfg:{ Config.h100 with Config.mode; engine = Some engine }
    ~program ~params ~num_programs:grid ~pid ~pop_global:(mk_pop ()) ()

let check_mode_diff name ?pid ?grid ?mk_pop program ~params =
  let go mode engine = run ~mode ~engine ?pid ?grid ?mk_pop program ~params in
  let f_ref = go Config.Functional Config.Reference in
  let t_ref = go Config.Timing Config.Reference in
  let f_dec = go Config.Functional Config.Decoded in
  let t_dec = go Config.Timing Config.Decoded in
  Alcotest.(check bool)
    (Printf.sprintf "%s: reference timing == functional (%.3f vs %.3f cycles)" name
       t_ref.Sim.cycles f_ref.Sim.cycles)
    true (timing_equal f_ref t_ref);
  Alcotest.(check bool)
    (Printf.sprintf "%s: decoded timing == functional (%.3f vs %.3f cycles)" name
       t_dec.Sim.cycles f_dec.Sim.cycles)
    true (timing_equal f_dec t_dec);
  Alcotest.(check bool)
    (name ^ ": decoded timing == reference functional") true
    (timing_equal f_ref t_dec)

let gemm_buffers ~m ~n ~kk =
  let a = Tensor.random ~dtype:Dtype.F16 ~seed:3 [| m; kk |] in
  let b = Tensor.random ~dtype:Dtype.F16 ~seed:4 [| kk; n |] in
  let c = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  [ Sim.Rtensor a; Sim.Rtensor b; Sim.Rtensor c; Sim.Rint m; Sim.Rint n; Sim.Rint kk ]

let test_mode_diff_gemm () =
  let params = gemm_buffers ~m:32 ~n:32 ~kk:16 in
  check_mode_diff "ws gemm" (ws_gemm ()).Flow.program ~params;
  check_mode_diff "ws gemm boundary cta" ~pid:[| 1; 1; 0 |] (ws_gemm ()).Flow.program
    ~params;
  check_mode_diff "deep gemm" (ws_gemm ~d:3 ~p:2 ()).Flow.program ~params;
  check_mode_diff "coop gemm" (ws_gemm ~coop:2 ()).Flow.program ~params

let test_mode_diff_baseline () =
  let compiled =
    Flow.compile_sw_pipelined ~stages:3
      (Tawa_frontend.Kernels.gemm ~tiles:small_tiles ())
  in
  check_mode_diff "sw-pipelined gemm" compiled.Flow.program
    ~params:(gemm_buffers ~m:32 ~n:32 ~kk:16)

let test_mode_diff_persistent () =
  check_mode_diff "persistent gemm"
    ~mk_pop:(fun () -> Launch.queue_of_list [ 0; 1; 2; 3 ])
    (ws_gemm ~persistent:true ()).Flow.program
    ~params:(gemm_buffers ~m:32 ~n:32 ~kk:16)

let test_mode_diff_attention () =
  let l = 32 and d = 8 in
  let compiled =
    compile ~d:2 ~p:1 ~coarse:true
      (Tawa_frontend.Kernels.attention ~block_m:16 ~block_n:16 ~head_dim:d ())
  in
  let q = Tensor.random ~dtype:Dtype.F16 ~seed:11 [| l; d |] in
  let kt = Tensor.random ~dtype:Dtype.F16 ~seed:12 [| l; d |] in
  let v = Tensor.random ~dtype:Dtype.F16 ~seed:13 [| l; d |] in
  let o = Tensor.create ~dtype:Dtype.F16 [| l; d |] in
  check_mode_diff "coarse attention" ~grid:[| 2; 1; 1 |] compiled.Flow.program
    ~params:[ Sim.Rtensor q; Sim.Rtensor kt; Sim.Rtensor v; Sim.Rtensor o; Sim.Rint l ]

(* ------------------------------------------------------------------ *)
(* 2. Decode-cache key shape and eviction                              *)
(* ------------------------------------------------------------------ *)

let test_cache_key_shape () =
  let p = (ws_gemm ()).Flow.program in
  let timing = Config.h100 in
  let functional = { Config.h100 with Config.mode = Config.Functional } in
  let k_tim = Engine.cache_key timing p in
  let k_fun = Engine.cache_key functional p in
  Alcotest.(check bool) "functional and timing keys differ" true (k_tim <> k_fun);
  let contains hay needle =
    Astring.String.find_sub ~sub:needle hay <> None
  in
  Alcotest.(check bool) "timing key names its mode" true (contains k_tim "timing");
  Alcotest.(check bool) "functional key names its mode" true
    (contains k_fun "functional");
  (* Cost-model fields are part of the key... *)
  let slow = { timing with Config.scalar_cycles = timing.Config.scalar_cycles +. 1.0 } in
  Alcotest.(check bool) "cost-model change changes the key" true
    (Engine.cache_key slow p <> k_tim);
  (* ...but trace collection and engine choice are not. *)
  Alcotest.(check bool) "collect_trace does not change the key" true
    (Engine.cache_key { timing with Config.collect_trace = true } p = k_tim);
  Alcotest.(check bool) "engine choice does not change the key" true
    (Engine.cache_key { timing with Config.engine = Some Config.Reference } p = k_tim);
  (* The timing-optimization flag joins the key in timing mode only. *)
  let opts_were_on = Decode.opts_on () in
  Decode.set_opts_enabled true;
  let k_opt = Engine.cache_key timing p and k_fun_opt = Engine.cache_key functional p in
  Decode.set_opts_enabled false;
  let k_noopt = Engine.cache_key timing p and k_fun_noopt = Engine.cache_key functional p in
  Decode.set_opts_enabled opts_were_on;
  Alcotest.(check bool) "opt flag changes the timing key" true (k_opt <> k_noopt);
  Alcotest.(check bool) "opt flag ignored in functional mode" true
    (k_fun_opt = k_fun_noopt)

let test_cache_eviction_new_keys () =
  (* A tiny cache filled through the new key shape: the third distinct
     (mode x cost-model) key must evict, and evicted entries miss
     again. *)
  let p = (ws_gemm ()).Flow.program in
  let timing = Config.h100 in
  let keys =
    [ Engine.cache_key timing p;
      Engine.cache_key { timing with Config.mode = Config.Functional } p;
      Engine.cache_key
        { timing with Config.scalar_cycles = timing.Config.scalar_cycles +. 1.0 }
        p ]
  in
  Alcotest.(check int) "three distinct keys" 3
    (List.length (List.sort_uniq compare keys));
  let c : int Progcache.t = Progcache.create ~max_entries:2 () in
  List.iteri (fun i k -> ignore (Progcache.find_or_add c ~key:k (fun () -> i))) keys;
  let s = Progcache.stats c in
  Alcotest.(check int) "three misses" 3 s.Progcache.misses;
  Alcotest.(check bool) "eviction occurred" true (s.Progcache.evictions > 0);
  ignore (Progcache.find_or_add c ~key:(List.hd keys) (fun () -> 9));
  Alcotest.(check int) "evicted key misses again" 4 (Progcache.stats c).Progcache.misses

let test_decode_cache_mode_entries () =
  (* Engine.prepare populates one entry per mode for the same program. *)
  Engine.clear_decode_cache ();
  let p = (ws_gemm ()).Flow.program in
  let s0 = Engine.decode_cache_stats () in
  ignore (Engine.prepare ~cfg:Config.h100 p);
  ignore (Engine.prepare ~cfg:{ Config.h100 with Config.mode = Config.Functional } p);
  let s1 = Engine.decode_cache_stats () in
  Alcotest.(check int) "two mode entries = two misses" 2
    (s1.Progcache.misses - s0.Progcache.misses);
  ignore (Engine.prepare ~cfg:Config.h100 p);
  ignore (Engine.prepare ~cfg:{ Config.h100 with Config.mode = Config.Functional } p);
  let s2 = Engine.decode_cache_stats () in
  Alcotest.(check int) "repeat prepares hit" 2 (s2.Progcache.hits - s1.Progcache.hits);
  Alcotest.(check int) "no further misses" 0 (s2.Progcache.misses - s1.Progcache.misses)

(* ------------------------------------------------------------------ *)
(* 3. Symmetry replication: bit-identity, refusals, fallback           *)
(* ------------------------------------------------------------------ *)

let counter name =
  match List.assoc_opt name (Registry.snapshot ()) with
  | Some (Registry.Int i) -> i
  | _ -> 0

(* Two heterogeneous GEMM items (differing cost inputs => two
   equivalence classes) over a 3-SM config whose share mixes units of
   both. *)
let grouped_items ?(functional = false) () =
  List.map
    (fun (m, n) ->
      let compiled = ws_gemm ~persistent:false () in
      let s = { Workloads.m; n; k = 16; dtype = Dtype.F16 } in
      let grid, params = Workloads.gemm_launch s ~tiles:small_tiles in
      (* Timing runs take the launch helper's unbound pointers (as the
         bench does); functional runs need real buffers. *)
      let params =
        if functional then gemm_buffers ~m ~n ~kk:16 else params
      in
      (compiled.Flow.program, params, grid, Workloads.gemm_flops s))
    [ (32, 32); (48, 32) ]

let with_replication enabled f =
  let was = Launch.replication_enabled () in
  Launch.set_replication_enabled enabled;
  Fun.protect ~finally:(fun () -> Launch.set_replication_enabled was) f

let cfg3 = { Config.h100 with Config.num_sms = 3 }

let test_replication_bit_identical () =
  let items = grouped_items () in
  let t_off = with_replication false (fun () -> Launch.estimate_grouped ~cfg:cfg3 items) in
  let sim0 = counter "launch.replication.simulated" in
  let rep0 = counter "launch.replication.replicated" in
  let t_on = with_replication true (fun () -> Launch.estimate_grouped ~cfg:cfg3 items) in
  Alcotest.(check (float 0.0)) "cycles bit-identical" t_off.Launch.cycles
    t_on.Launch.cycles;
  Alcotest.(check (float 0.0)) "tc_busy bit-identical" t_off.Launch.stats.Sim.tc_busy
    t_on.Launch.stats.Sim.tc_busy;
  (* 10 units, share 4 (every 3rd unit): units {0,3} are class 0 and
     {6,9} class 1 — one representative simulated per class. *)
  Alcotest.(check int) "one simulation per class" 2
    (counter "launch.replication.simulated" - sim0);
  Alcotest.(check int) "other units replicated" 2
    (counter "launch.replication.replicated" - rep0)

let test_replication_functional_mode_disabled () =
  (* Functional mode must simulate every CTA (buffer writes happen),
     so replication is bypassed even when enabled. *)
  let items = grouped_items ~functional:true () in
  let sim0 = counter "launch.replication.simulated" in
  let rep0 = counter "launch.replication.replicated" in
  let t_fun =
    with_replication true (fun () ->
        Launch.estimate_grouped ~mode:Config.Functional ~cfg:cfg3 items)
  in
  Alcotest.(check int) "no replication accounting in functional mode" 0
    (counter "launch.replication.simulated" - sim0
    + (counter "launch.replication.replicated" - rep0));
  let t_tim = with_replication true (fun () -> Launch.estimate_grouped ~cfg:cfg3 items) in
  Alcotest.(check (float 0.0)) "functional cycles == timing cycles" t_fun.Launch.cycles
    t_tim.Launch.cycles

(* A CTA whose instruction path depends on its id: CTA 0 skips the
   ALU op, every other CTA executes it. Replicating CTA 0's timing
   across the wave would be wrong — the verdict must refuse and the
   launcher must fall back to simulating each CTA. *)
let pid_branch_program =
  {
    Isa.name = "pid_branch";
    param_tys = [];
    streams =
      [ { Isa.role = Tawa_ir.Op.Consumer; coop = 1;
          instrs =
            [| Isa.Pid { dst = 0; axis = 0 };
               Isa.Brz { cond = Isa.Reg 0; target = 3 };
               Isa.Alu { op = Tawa_ir.Op.Add; dst = 1; a = Isa.Imm 1; b = Isa.Imm 2 };
               Isa.Exit |] } ];
    allocs = [];
    num_mbarriers = 0;
    mbar_arrive_counts = [||];
    mbar_resettable = [||];
    num_rings = 0;
    persistent = false;
    grid_axes = 3;
    prov = Isa.no_prov;
  }

let test_replication_refusals () =
  (match Replicate.verdict pid_branch_program with
  | Replicate.Refused r ->
    Alcotest.(check bool) "pid branch reason" true
      (Astring.String.find_sub ~sub:"branches" r <> None)
  | Replicate.Replicable -> Alcotest.fail "pid-branching program must be refused");
  (match Replicate.verdict (ws_gemm ~persistent:true ()).Flow.program with
  | Replicate.Refused r ->
    Alcotest.(check bool) "persistent reason" true
      (Astring.String.find_sub ~sub:"persistent" r <> None)
  | Replicate.Replicable -> Alcotest.fail "persistent program must be refused");
  (* An arefcheck protocol violation (orphan mbarrier wait) refuses. *)
  let orphan_wait =
    { pid_branch_program with
      Isa.name = "orphan_wait";
      num_mbarriers = 1;
      mbar_arrive_counts = [| 1 |];
      mbar_resettable = [| true |];
      streams =
        [ { Isa.role = Tawa_ir.Op.Producer; coop = 1;
            instrs =
              [| Isa.Mbar_wait
                   { bar = { Isa.base = 0; index = Isa.Imm 0 }; target = Isa.Imm 1 };
                 Isa.Exit |] } ] }
  in
  match Replicate.verdict orphan_wait with
  | Replicate.Refused r ->
    Alcotest.(check bool) "arefcheck reason" true
      (Astring.String.find_sub ~sub:"arefcheck" r <> None)
  | Replicate.Replicable -> Alcotest.fail "arefcheck-violating program must be refused"

let test_replication_refused_fallback () =
  (* Every CTA of the refused program is simulated, so the estimate is
     bit-identical with replication on or off — even though the CTAs
     genuinely differ (replicating CTA 0 would have changed it). *)
  let items = [ (pid_branch_program, [], (3, 1, 1), 1.0) ] in
  let cfg1 = { Config.h100 with Config.num_sms = 1 } in
  let t_off =
    with_replication false (fun () -> Launch.estimate_grouped ~cfg:cfg1 items)
  in
  let sim0 = counter "launch.replication.simulated" in
  let rep0 = counter "launch.replication.replicated" in
  let t_on = with_replication true (fun () -> Launch.estimate_grouped ~cfg:cfg1 items) in
  Alcotest.(check (float 0.0)) "fallback bit-identical" t_off.Launch.cycles
    t_on.Launch.cycles;
  Alcotest.(check int) "all three CTAs simulated" 3
    (counter "launch.replication.simulated" - sim0);
  Alcotest.(check int) "none replicated" 0
    (counter "launch.replication.replicated" - rep0)

let test_refusal_warning_once () =
  (* The refusal warning is emitted at most once per process, not once
     per launch. *)
  let warnings = ref 0 in
  let old_reporter = Logs.reporter () in
  let old_level = Logs.level () in
  Logs.set_level (Some Logs.Warning);
  Logs.set_reporter
    { Logs.report =
        (fun src level ~over k _msgf ->
          if level = Logs.Warning && Logs.Src.name src = "tawa.launch" then
            incr warnings;
          over ();
          k ()) };
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter old_reporter;
      Logs.set_level old_level)
    (fun () ->
      let items = [ (pid_branch_program, [], (3, 1, 1), 1.0) ] in
      let cfg1 = { Config.h100 with Config.num_sms = 1 } in
      let go () =
        ignore (with_replication true (fun () -> Launch.estimate_grouped ~cfg:cfg1 items))
      in
      go ();
      let after_first = !warnings in
      go ();
      Alcotest.(check bool) "at most one warning" true (after_first <= 1);
      Alcotest.(check int) "second launch adds no warning" after_first !warnings)

let test_replication_mixed_wave () =
  (* A wave mixing a replicable class with a refused one: the refused
     item's units are all simulated, the replicable item collapses to
     one representative, and the total stays bit-identical. *)
  let gemm_item = List.hd (grouped_items ()) in
  let items = [ gemm_item; (pid_branch_program, [], (4, 1, 1), 1.0) ] in
  let cfg2 = { Config.h100 with Config.num_sms = 2 } in
  let t_off =
    with_replication false (fun () -> Launch.estimate_grouped ~cfg:cfg2 items)
  in
  let t_on = with_replication true (fun () -> Launch.estimate_grouped ~cfg:cfg2 items) in
  Alcotest.(check (float 0.0)) "mixed wave bit-identical" t_off.Launch.cycles
    t_on.Launch.cycles

let suites =
  [ ( "modes.differential",
      [ Alcotest.test_case "gemm variants" `Quick test_mode_diff_gemm;
        Alcotest.test_case "sw-pipelined baseline" `Quick test_mode_diff_baseline;
        Alcotest.test_case "persistent gemm" `Quick test_mode_diff_persistent;
        Alcotest.test_case "coarse attention" `Quick test_mode_diff_attention ] );
    ( "modes.cachekey",
      [ Alcotest.test_case "key shape" `Quick test_cache_key_shape;
        Alcotest.test_case "eviction on new keys" `Quick test_cache_eviction_new_keys;
        Alcotest.test_case "per-mode decode entries" `Quick
          test_decode_cache_mode_entries ] );
    ( "modes.replication",
      [ Alcotest.test_case "bit-identical when granted" `Quick
          test_replication_bit_identical;
        Alcotest.test_case "disabled in functional mode" `Quick
          test_replication_functional_mode_disabled;
        Alcotest.test_case "refusal verdicts" `Quick test_replication_refusals;
        Alcotest.test_case "refused fallback simulates all" `Quick
          test_replication_refused_fallback;
        Alcotest.test_case "warning fires once" `Quick test_refusal_warning_once;
        Alcotest.test_case "mixed wave" `Quick test_replication_mixed_wave ] );
  ]
