(* The .tw kernels shipped in examples/kernels/ must parse, verify,
   compile through the full Tawa pipeline, and compute correct results
   on the simulator — guarding everything `tawac` users would touch. *)

open Tawa_tensor
open Tawa_ir
open Tawa_frontend
open Tawa_gpusim

let kernels_dir = "../examples/kernels"

let load name =
  match Elaborate.compile_file (Filename.concat kernels_dir name) with
  | [ k ] -> k
  | ks -> Alcotest.failf "%s: expected one kernel, got %d" name (List.length ks)

let compile ?(coarse = false) kernel =
  Tawa_core.Flow.compile
    ~options:
      { Tawa_core.Flow.default_options with aref_depth = 2; mma_depth = 2; num_consumer_wgs = 1;
        persistent = false; use_coarse = coarse }
    kernel

let test_gemm_tw () =
  let c = compile (load "gemm.tw") in
  Alcotest.(check bool) "warp specialized" true c.Tawa_core.Flow.warp_specialized;
  let m = 32 and n = 32 and kk = 24 in
  let a = Tensor.random ~dtype:Dtype.F16 ~seed:1 [| m; kk |] in
  let b = Tensor.random ~dtype:Dtype.F16 ~seed:2 [| kk; n |] in
  let out = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  ignore
    (Launch.run_grid_functional ~cfg:Config.functional_test c.Tawa_core.Flow.program
       ~params:
         [ Sim.Rtensor a; Sim.Rtensor b; Sim.Rtensor out; Sim.Rint m; Sim.Rint n;
           Sim.Rint kk ]
       ~grid:(m / 16, n / 16, 1));
  Alcotest.(check bool) "matches reference" true
    (Tensor.max_rel_diff out (Reference.gemm ~out_dtype:Dtype.F16 a b) < 1e-3)

(* FP8 inputs quantize at tensor creation, so the simulator and the
   reference see identical values and the diff is exact. *)
let test_gemm_fp8_tw () =
  let c = compile (load "gemm_fp8.tw") in
  Alcotest.(check bool) "warp specialized" true c.Tawa_core.Flow.warp_specialized;
  let m = 32 and n = 32 and kk = 24 in
  let a = Tensor.random ~dtype:Dtype.F8E4M3 ~seed:1 [| m; kk |] in
  let b = Tensor.random ~dtype:Dtype.F8E4M3 ~seed:2 [| kk; n |] in
  let out = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  ignore
    (Launch.run_grid_functional ~cfg:Config.functional_test c.Tawa_core.Flow.program
       ~params:
         [ Sim.Rtensor a; Sim.Rtensor b; Sim.Rtensor out; Sim.Rint m; Sim.Rint n;
           Sim.Rint kk ]
       ~grid:(m / 16, n / 16, 1));
  Alcotest.(check bool) "matches reference" true
    (Tensor.max_rel_diff out (Reference.gemm ~out_dtype:Dtype.F16 a b) < 1e-3)

let test_attention_tw () =
  let c = compile ~coarse:true (load "attention.tw") in
  Alcotest.(check bool) "coarse" true c.Tawa_core.Flow.coarse;
  let l = 64 and d = 8 in
  let q = Tensor.random ~dtype:Dtype.F16 ~seed:11 [| l; d |] in
  let kt = Tensor.random ~dtype:Dtype.F16 ~seed:12 [| l; d |] in
  let v = Tensor.random ~dtype:Dtype.F16 ~seed:13 [| l; d |] in
  let o = Tensor.create ~dtype:Dtype.F16 [| l; d |] in
  ignore
    (Launch.run_grid_functional ~cfg:Config.functional_test c.Tawa_core.Flow.program
       ~params:[ Sim.Rtensor q; Sim.Rtensor kt; Sim.Rtensor v; Sim.Rtensor o; Sim.Rint l ]
       ~grid:(l / 16, 1, 1));
  let want = Reference.attention ~out_dtype:Dtype.F16 ~q ~k:kt ~v () in
  Alcotest.(check bool) "matches reference" true (Tensor.max_rel_diff o want < 2e-2)

let test_gemm_bias_relu_tw () =
  let c = compile (load "gemm_bias_relu.tw") in
  Alcotest.(check bool) "warp specialized" true c.Tawa_core.Flow.warp_specialized;
  let m = 16 and n = 16 and kk = 16 in
  let a = Tensor.random ~dtype:Dtype.F16 ~seed:7 [| m; kk |] in
  let b = Tensor.random ~dtype:Dtype.F16 ~seed:8 [| kk; n |] in
  let bias = Tensor.random ~seed:9 [| 1; n |] in
  let out = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  ignore
    (Launch.run_grid_functional ~cfg:Config.functional_test c.Tawa_core.Flow.program
       ~params:
         [ Sim.Rtensor a; Sim.Rtensor b; Sim.Rtensor bias; Sim.Rtensor out; Sim.Rint m;
           Sim.Rint n; Sim.Rint kk ]
       ~grid:(1, 1, 1));
  let base = Reference.gemm ~out_dtype:Dtype.F32 a b in
  let want = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      Tensor.set2 want i j (Float.max 0.0 (Tensor.get2 base i j +. Tensor.get2 bias 0 j))
    done
  done;
  Alcotest.(check bool) "bias+relu matches" true (Tensor.max_rel_diff out want < 1e-3)

let test_all_tw_files_found () =
  let files = Sys.readdir kernels_dir in
  let tw = Array.to_list files |> List.filter (fun f -> Filename.check_suffix f ".tw") in
  Alcotest.(check bool) "at least four shipped kernels" true (List.length tw >= 4);
  (* Every shipped .tw file must at minimum parse and verify. *)
  List.iter
    (fun f ->
      let ks = Elaborate.compile_file (Filename.concat kernels_dir f) in
      List.iter Verifier.verify ks)
    tw

let suites =
  [
    ( "examples.kernels",
      [
        Alcotest.test_case "gemm.tw end-to-end" `Quick test_gemm_tw;
        Alcotest.test_case "gemm_fp8.tw end-to-end" `Quick test_gemm_fp8_tw;
        Alcotest.test_case "attention.tw end-to-end" `Quick test_attention_tw;
        Alcotest.test_case "gemm_bias_relu.tw end-to-end" `Quick test_gemm_bias_relu_tw;
        Alcotest.test_case "all .tw files verify" `Quick test_all_tw_files_found;
      ] );
  ]
