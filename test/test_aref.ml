(* Tests for the executable aref semantics (paper Fig. 4), the D-deep
   ring channels, and the model-checking scheduler. *)

open Tawa_aref

let ok_unit = function Semantics.Ok () -> true | Semantics.Blocked -> false
let blocked = function Semantics.Blocked -> true | Semantics.Ok _ -> false

(* ------------------------------------------------------------------ *)
(* Fig. 4 state machine                                               *)
(* ------------------------------------------------------------------ *)

let test_initial_state () =
  let a = Semantics.create () in
  Alcotest.(check int) "E=1 initially" 1 (Semantics.empty_flag a);
  Alcotest.(check int) "F=0 initially" 0 (Semantics.full_flag a);
  Alcotest.(check string) "state" "empty" (Semantics.state_name a)

let test_put_rule () =
  let a = Semantics.create () in
  Alcotest.(check bool) "put fires on empty" true (ok_unit (Semantics.put a 42));
  Alcotest.(check int) "F=1 after put" 1 (Semantics.full_flag a);
  Alcotest.(check int) "E=0 after put" 0 (Semantics.empty_flag a);
  (* Second put must block: slot not empty. *)
  Alcotest.(check bool) "put blocks on full" true (blocked (Semantics.put a 43))

let test_get_rule () =
  let a = Semantics.create () in
  Alcotest.(check bool) "get blocks on empty" true (blocked (Semantics.get a));
  ignore (Semantics.put a 7);
  (match Semantics.get a with
  | Semantics.Ok v -> Alcotest.(check int) "get returns payload" 7 v
  | Semantics.Blocked -> Alcotest.fail "get should fire on full");
  (* Borrowed: neither credit held. *)
  Alcotest.(check int) "F=0 borrowed" 0 (Semantics.full_flag a);
  Alcotest.(check int) "E=0 borrowed" 0 (Semantics.empty_flag a);
  Alcotest.(check string) "state" "borrowed" (Semantics.state_name a);
  (* get again blocks (value already taken). *)
  Alcotest.(check bool) "get blocks on borrowed" true (blocked (Semantics.get a))

let test_consumed_rule () =
  let a = Semantics.create () in
  ignore (Semantics.put a 1);
  ignore (Semantics.get a);
  Alcotest.(check bool) "consumed fires" true (ok_unit (Semantics.consumed a));
  Alcotest.(check int) "E=1 restored" 1 (Semantics.empty_flag a);
  (* The slot is reusable: full put/get/consumed cycle again. *)
  Alcotest.(check bool) "slot reusable" true (ok_unit (Semantics.put a 2))

let test_consumed_protocol_errors () =
  let a = Semantics.create () in
  Alcotest.(check bool) "double release raises" true
    (try
       ignore (Semantics.consumed a);
       false
     with Semantics.Protocol_error _ -> true);
  let b = Semantics.create () in
  ignore (Semantics.put b 5);
  Alcotest.(check bool) "consumed on full raises" true
    (try
       ignore (Semantics.consumed b);
       false
     with Semantics.Protocol_error _ -> true)

let test_put_blocks_until_consumed () =
  (* The happens-before chain of §III-B: a second put cannot overwrite a
     value that has not been consumed. *)
  let a = Semantics.create () in
  ignore (Semantics.put a 1);
  Alcotest.(check bool) "blocked while full" true (blocked (Semantics.put a 2));
  ignore (Semantics.get a);
  Alcotest.(check bool) "still blocked while borrowed" true (blocked (Semantics.put a 2));
  ignore (Semantics.consumed a);
  Alcotest.(check bool) "unblocked after consumed" true (ok_unit (Semantics.put a 2))

(* Property: under any sequence of attempted operations, the credit
   invariant holds and payloads are never lost or duplicated. *)
let prop_invariant_any_sequence =
  QCheck.Test.make ~name:"aref invariant under random op sequences" ~count:500
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 0 2))
    (fun ops ->
      let a = Semantics.create () in
      let next = ref 0 and got = ref [] in
      List.iter
        (fun op ->
          (try
             match op with
             | 0 -> (
               match Semantics.put a !next with
               | Semantics.Ok () -> incr next
               | Semantics.Blocked -> ())
             | 1 -> (
               match Semantics.get a with
               | Semantics.Ok v -> got := v :: !got
               | Semantics.Blocked -> ())
             | _ -> ( match Semantics.consumed a with _ -> ())
           with Semantics.Protocol_error _ -> ());
          if not (Semantics.invariant_holds a) then failwith "invariant broken")
        ops;
      (* Received values are a prefix of 0,1,2,... in order. *)
      let received = List.rev !got in
      List.for_all2 ( = ) received (List.init (List.length received) Fun.id))

(* ------------------------------------------------------------------ *)
(* Rings                                                              *)
(* ------------------------------------------------------------------ *)

let test_ring_slot_mapping () =
  let r = Ring.create ~depth:3 in
  Alcotest.(check int) "depth" 3 (Ring.depth r);
  Alcotest.(check int) "slot 0" 0 (Ring.slot_of_iter r 0);
  Alcotest.(check int) "slot 4" 1 (Ring.slot_of_iter r 4);
  Alcotest.(check int) "slot 5" 2 (Ring.slot_of_iter r 5)

let test_ring_allows_depth_outstanding () =
  let r = Ring.create ~depth:3 in
  (* The producer can run D iterations ahead before blocking. *)
  Alcotest.(check bool) "put 0" true (ok_unit (Ring.put r ~iter:0 100));
  Alcotest.(check bool) "put 1" true (ok_unit (Ring.put r ~iter:1 101));
  Alcotest.(check bool) "put 2" true (ok_unit (Ring.put r ~iter:2 102));
  Alcotest.(check int) "occupancy 3" 3 (Ring.occupancy r);
  Alcotest.(check bool) "put 3 blocks (slot 0 busy)" true (blocked (Ring.put r ~iter:3 103));
  (* Consumer frees slot 0 -> iteration 3 can proceed. *)
  (match Ring.get r ~iter:0 with
  | Semantics.Ok v -> Alcotest.(check int) "fifo head" 100 v
  | Semantics.Blocked -> Alcotest.fail "get 0 should fire");
  ignore (Ring.consumed r ~iter:0);
  Alcotest.(check bool) "put 3 proceeds" true (ok_unit (Ring.put r ~iter:3 103))

let test_ring_depth_one_is_rendezvous () =
  let r = Ring.create ~depth:1 in
  Alcotest.(check bool) "put 0" true (ok_unit (Ring.put r ~iter:0 0));
  Alcotest.(check bool) "put 1 blocks" true (blocked (Ring.put r ~iter:1 1));
  ignore (Ring.get r ~iter:0);
  ignore (Ring.consumed r ~iter:0);
  Alcotest.(check bool) "put 1 fires" true (ok_unit (Ring.put r ~iter:1 1))

let test_ring_invalid () =
  Alcotest.check_raises "bad depth" (Invalid_argument "Ring.create: depth must be positive")
    (fun () -> ignore (Ring.create ~depth:0));
  let r = Ring.create ~depth:2 in
  Alcotest.check_raises "negative iter"
    (Invalid_argument "Ring.slot_of_iter: negative iteration") (fun () ->
      ignore (Ring.put r ~iter:(-1) 0))

(* FIFO property: consumer in iteration order receives values in
   producer order, for any depth. *)
let prop_ring_fifo =
  QCheck.Test.make ~name:"ring delivers FIFO for any depth" ~count:200
    QCheck.(pair (int_range 1 6) (int_range 1 40))
    (fun (depth, n) ->
      let r = Ring.create ~depth in
      let out = ref [] in
      (* Drive both sides eagerly: producer as far ahead as possible. *)
      let p = ref 0 and c = ref 0 in
      while !c < n do
        (match if !p < n then Ring.put r ~iter:!p !p else Semantics.Blocked with
        | Semantics.Ok () -> incr p
        | Semantics.Blocked -> ());
        (match Ring.get r ~iter:!c with
        | Semantics.Ok v ->
          out := v :: !out;
          ignore (Ring.consumed r ~iter:!c);
          incr c
        | Semantics.Blocked -> ())
      done;
      List.rev !out = List.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* Scheduler / model checking                                         *)
(* ------------------------------------------------------------------ *)

let test_producer_consumer_completes_roundrobin () =
  let rings = [| Ring.create ~depth:2 |] in
  let agents = Schedule.producer_consumer_program ~n:10 in
  let tick = ref 0 in
  let choose runnable =
    incr tick;
    runnable.(!tick mod Array.length runnable)
  in
  match Schedule.run ~rings ~choose agents with
  | Schedule.Completed results ->
    let consumer_values = List.assoc "consumer" results in
    Alcotest.(check (list int)) "in order" (List.init 10 Fun.id) consumer_values
  | Schedule.Deadlock names -> Alcotest.failf "deadlock: %s" (String.concat "," names)
  | Schedule.Error e -> Alcotest.fail e

let prop_producer_consumer_never_deadlocks =
  (* Any schedule (driven by a random choice seed) completes with FIFO
     delivery: the protocol emitted by loop distribution is
     deadlock-free for every interleaving and every depth. *)
  QCheck.Test.make ~name:"producer/consumer deadlock-free under random schedules"
    ~count:300
    QCheck.(triple (int_range 1 4) (int_range 1 25) int)
    (fun (depth, n, seed) ->
      let rings = [| Ring.create ~depth |] in
      let agents = Schedule.producer_consumer_program ~n in
      let state = ref (seed land 0xFFFFFF) in
      let choose runnable =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        runnable.(!state mod Array.length runnable)
      in
      match Schedule.run ~rings ~choose agents with
      | Schedule.Completed results ->
        List.assoc "consumer" results = List.init n Fun.id
      | Schedule.Deadlock _ | Schedule.Error _ -> false)

let test_out_of_order_consumer_deadlocks () =
  (* A consumer that waits for iteration 1 before iteration 0 on a
     depth-1 ring deadlocks — the scheduler detects it. *)
  let rings = [| Ring.create ~depth:1 |] in
  let producer =
    { Schedule.name = "producer";
      actions = [| Schedule.Put { ring = 0; iter = 0; value = 0 };
                   Schedule.Put { ring = 0; iter = 1; value = 1 } |];
      pc = 0 }
  in
  let consumer =
    { Schedule.name = "consumer";
      actions = [| Schedule.Get { ring = 0; iter = 1 };
                   Schedule.Consumed { ring = 0; iter = 1 };
                   Schedule.Get { ring = 0; iter = 0 };
                   Schedule.Consumed { ring = 0; iter = 0 } |];
      pc = 0 }
  in
  (* NOTE: iter 1 on depth-1 maps to slot 0, so get(1) actually reads
     put(0)'s value — the protocol "works" by aliasing. The deadlock
     appears with depth 2, where slots differ. *)
  let rings2 = [| Ring.create ~depth:2 |] in
  let choose runnable = runnable.(0) in
  (match
     Schedule.run ~rings:rings2 ~choose
       [ { producer with pc = 0 }; { consumer with pc = 0 } ]
   with
  | Schedule.Deadlock _ -> ()
  | Schedule.Completed _ ->
    (* Producer put(0), put(1); consumer get(1) sees slot 1 full. It can
       actually complete: get(1), consumed(1), get(0), consumed(0).
       A true deadlock needs the producer to still be waiting; use
       depth 1 with distinct slots impossible — accept completion. *)
    ()
  | Schedule.Error e -> Alcotest.fail e);
  ignore rings

let test_multicast_all_consumers_must_release () =
  let m = Ring.Multicast.create ~depth:1 ~consumers:2 in
  Alcotest.(check bool) "put" true (ok_unit (Ring.Multicast.put m ~iter:0 99));
  (match Ring.Multicast.get m ~consumer:0 ~iter:0 with
  | Semantics.Ok v -> Alcotest.(check int) "c0 reads" 99 v
  | Semantics.Blocked -> Alcotest.fail "c0 get");
  (* Slot not reusable until both consumers release. *)
  ignore (Ring.Multicast.consumed m ~consumer:0 ~iter:0);
  Alcotest.(check bool) "put blocks (c1 pending)" true
    (blocked (Ring.Multicast.put m ~iter:1 100));
  (match Ring.Multicast.get m ~consumer:1 ~iter:0 with
  | Semantics.Ok v -> Alcotest.(check int) "c1 reads same value" 99 v
  | Semantics.Blocked -> Alcotest.fail "c1 get");
  ignore (Ring.Multicast.consumed m ~consumer:1 ~iter:0);
  Alcotest.(check bool) "put proceeds after all release" true
    (ok_unit (Ring.Multicast.put m ~iter:1 100))

let test_multicast_double_get_rejected () =
  let m = Ring.Multicast.create ~depth:1 ~consumers:2 in
  ignore (Ring.Multicast.put m ~iter:0 1);
  ignore (Ring.Multicast.get m ~consumer:0 ~iter:0);
  Alcotest.(check bool) "double get raises" true
    (try
       ignore (Ring.Multicast.get m ~consumer:0 ~iter:0);
       false
     with Semantics.Protocol_error _ -> true)

let test_multicast_straggler_blocks_slot_reuse () =
  (* Depth 2: the producer can run two iterations ahead, but slot 0 is
     only reusable for iter 2 once EVERY consumer has released iter 0.
     Consumer 1 straggles while consumer 0 races ahead. *)
  let m = Ring.Multicast.create ~depth:2 ~consumers:2 in
  Alcotest.(check bool) "put 0" true (ok_unit (Ring.Multicast.put m ~iter:0 10));
  Alcotest.(check bool) "put 1" true (ok_unit (Ring.Multicast.put m ~iter:1 11));
  (* c0 drains both iterations. *)
  (match Ring.Multicast.get m ~consumer:0 ~iter:0 with
  | Semantics.Ok v -> Alcotest.(check int) "c0 iter0" 10 v
  | Semantics.Blocked -> Alcotest.fail "c0 get 0");
  ignore (Ring.Multicast.consumed m ~consumer:0 ~iter:0);
  (match Ring.Multicast.get m ~consumer:0 ~iter:1 with
  | Semantics.Ok v -> Alcotest.(check int) "c0 iter1" 11 v
  | Semantics.Blocked -> Alcotest.fail "c0 get 1");
  ignore (Ring.Multicast.consumed m ~consumer:0 ~iter:1);
  (* Slot 0 still held by the straggler: iter 2 must not overwrite it. *)
  Alcotest.(check bool) "put 2 blocks on straggler" true
    (blocked (Ring.Multicast.put m ~iter:2 12));
  (match Ring.Multicast.get m ~consumer:1 ~iter:0 with
  | Semantics.Ok v -> Alcotest.(check int) "c1 still sees iter0" 10 v
  | Semantics.Blocked -> Alcotest.fail "c1 get 0");
  (* Read performed but not released: reuse is still forbidden. *)
  Alcotest.(check bool) "put 2 blocks until release" true
    (blocked (Ring.Multicast.put m ~iter:2 12));
  ignore (Ring.Multicast.consumed m ~consumer:1 ~iter:0);
  Alcotest.(check bool) "put 2 proceeds after release" true
    (ok_unit (Ring.Multicast.put m ~iter:2 12))

let test_multicast_get_resets_per_iteration () =
  (* A recycled slot must clear its per-consumer read marks: one get per
     consumer per ITERATION, not per slot lifetime. *)
  let m = Ring.Multicast.create ~depth:1 ~consumers:1 in
  ignore (Ring.Multicast.put m ~iter:0 7);
  (match Ring.Multicast.get m ~consumer:0 ~iter:0 with
  | Semantics.Ok v -> Alcotest.(check int) "iter0" 7 v
  | Semantics.Blocked -> Alcotest.fail "get 0");
  ignore (Ring.Multicast.consumed m ~consumer:0 ~iter:0);
  ignore (Ring.Multicast.put m ~iter:1 8);
  (* Same slot, new iteration: this get is legal, not a double get. *)
  (match Ring.Multicast.get m ~consumer:0 ~iter:1 with
  | Semantics.Ok v -> Alcotest.(check int) "iter1" 8 v
  | Semantics.Blocked -> Alcotest.fail "get 1");
  (* But a second get of the SAME iteration is a protocol error. *)
  Alcotest.(check bool) "double get of iter1 raises" true
    (try
       ignore (Ring.Multicast.get m ~consumer:0 ~iter:1);
       false
     with Semantics.Protocol_error _ -> true)

let test_multicast_release_discipline () =
  let m = Ring.Multicast.create ~depth:1 ~consumers:2 in
  ignore (Ring.Multicast.put m ~iter:0 1);
  (* consumed before get is a protocol error, not a block. *)
  Alcotest.(check bool) "consumed before get raises" true
    (try
       ignore (Ring.Multicast.consumed m ~consumer:1 ~iter:0);
       false
     with Semantics.Protocol_error _ -> true);
  ignore (Ring.Multicast.get m ~consumer:0 ~iter:0);
  ignore (Ring.Multicast.consumed m ~consumer:0 ~iter:0);
  (* double consumed by the same consumer is likewise rejected. *)
  Alcotest.(check bool) "double consumed raises" true
    (try
       ignore (Ring.Multicast.consumed m ~consumer:0 ~iter:0);
       false
     with Semantics.Protocol_error _ -> true)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "aref.semantics",
      [
        Alcotest.test_case "initial state" `Quick test_initial_state;
        Alcotest.test_case "put rule" `Quick test_put_rule;
        Alcotest.test_case "get rule" `Quick test_get_rule;
        Alcotest.test_case "consumed rule" `Quick test_consumed_rule;
        Alcotest.test_case "protocol errors" `Quick test_consumed_protocol_errors;
        Alcotest.test_case "put waits for consumed" `Quick test_put_blocks_until_consumed;
      ] );
    qsuite "aref.semantics.props" [ prop_invariant_any_sequence ];
    ( "aref.ring",
      [
        Alcotest.test_case "slot mapping" `Quick test_ring_slot_mapping;
        Alcotest.test_case "depth outstanding" `Quick test_ring_allows_depth_outstanding;
        Alcotest.test_case "depth 1 rendezvous" `Quick test_ring_depth_one_is_rendezvous;
        Alcotest.test_case "invalid args" `Quick test_ring_invalid;
      ] );
    qsuite "aref.ring.props" [ prop_ring_fifo ];
    ( "aref.schedule",
      [
        Alcotest.test_case "round robin completes" `Quick
          test_producer_consumer_completes_roundrobin;
        Alcotest.test_case "ooo consumer" `Quick test_out_of_order_consumer_deadlocks;
      ] );
    qsuite "aref.schedule.props" [ prop_producer_consumer_never_deadlocks ];
    ( "aref.multicast",
      [
        Alcotest.test_case "all must release" `Quick test_multicast_all_consumers_must_release;
        Alcotest.test_case "double get rejected" `Quick test_multicast_double_get_rejected;
        Alcotest.test_case "straggler blocks slot reuse" `Quick
          test_multicast_straggler_blocks_slot_reuse;
        Alcotest.test_case "get resets per iteration" `Quick
          test_multicast_get_resets_per_iteration;
        Alcotest.test_case "release discipline" `Quick test_multicast_release_discipline;
      ] );
  ]
