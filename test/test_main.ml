let () =
  Alcotest.run "tawa"
    (Test_tensor.suites @ Test_aref.suites @ Test_ir.suites @ Test_passes.suites @ Test_machine.suites @ Test_frontend.suites @ Test_gpusim.suites @ Test_core.suites @ Test_pool.suites @ Test_baselines.suites @ Test_integration.suites @ Test_fuzz.suites @ Test_examples.suites @ Test_analysis.suites @ Test_statcheck.suites @ Test_engine.suites @ Test_obs.suites @ Test_modes.suites @ Test_autotune.suites @ Test_graph.suites @ Test_prof.suites)
