(* Differential fuzzing of the whole compiler: generate random tile
   kernels (a TMA-fed dot loop followed by a random elementwise
   epilogue chain, with random tile shapes and trip counts), compile
   them through every pipeline configuration, execute on the simulator,
   and demand exact agreement with the sequential interpreter.

   This is the strongest correctness statement in the repository: for
   arbitrary programs in the supported fragment, warp specialization +
   pipelining + lowering + simulation is semantics-preserving. *)

open Tawa_tensor
open Tawa_ir
open Tawa_gpusim

(* ------------------------------------------------------------------ *)
(* Random kernel generation                                            *)
(* ------------------------------------------------------------------ *)

type ew_op = Add_const | Mul_const | Abs_op | Max_zero | Exp_damped | Sub_self_max

type spec = {
  bm : int;
  bn : int;
  bk : int;
  trip : int; (* loop iterations *)
  loop_chain : ew_op list;  (* elementwise ops applied to acc in-loop *)
  epi_chain : ew_op list;   (* elementwise ops applied after the loop *)
  const : float;
}

let gen_spec =
  QCheck.Gen.(
    let* bm = oneofl [ 4; 8 ] in
    let* bn = oneofl [ 4; 8 ] in
    let* bk = oneofl [ 4; 8 ] in
    let* trip = int_range 1 5 in
    let* nloop = int_range 0 2 in
    let* nepi = int_range 0 3 in
    let op =
      oneofl [ Add_const; Mul_const; Abs_op; Max_zero; Exp_damped; Sub_self_max ]
    in
    let* loop_chain = list_size (return nloop) op in
    let* epi_chain = list_size (return nepi) op in
    let* const = float_range (-1.5) 1.5 in
    return { bm; bn; bk; trip; loop_chain; epi_chain; const })

let spec_print s =
  Printf.sprintf "bm=%d bn=%d bk=%d trip=%d loop=%d epi=%d c=%.3f" s.bm s.bn s.bk s.trip
    (List.length s.loop_chain) (List.length s.epi_chain) s.const

let arb_spec = QCheck.make ~print:spec_print gen_spec

(* Apply one elementwise op to a [bm x bn] f32 tile value. All choices
   keep magnitudes bounded so FP16 storage cannot overflow. *)
let emit_ew b shape const (x : Value.t) = function
  | Add_const ->
    let c = Builder.splat b (Builder.const_f b const) shape in
    Builder.add b x c
  | Mul_const ->
    let c = Builder.splat b (Builder.const_f b (0.5 +. (const /. 4.0))) shape in
    Builder.mul b x c
  | Abs_op -> Builder.unop b Op.Abs x
  | Max_zero ->
    let z = Builder.zeros b shape Dtype.F32 in
    Builder.max_ b x z
  | Exp_damped ->
    (* exp(-|x| / 4): bounded in (0, 1]. *)
    let a = Builder.unop b Op.Abs x in
    let q = Builder.splat b (Builder.const_f b (-0.25)) shape in
    Builder.exp b (Builder.mul b a q)
  | Sub_self_max ->
    (* x - rowmax(x) broadcast: the softmax-style pattern. *)
    let m = Builder.reduce b Op.Red_max 1 x in
    let mb = Builder.broadcast b (Builder.expand_dims b m 1) shape in
    Builder.sub b x mb

let build_kernel (s : spec) : Kernel.t =
  Builder.kernel "fuzz"
    [ ("a", Types.ptr Dtype.F16); ("b", Types.ptr Dtype.F16); ("c", Types.ptr Dtype.F16);
      ("M", Types.i32); ("N", Types.i32); ("K", Types.i32) ]
    (fun b ps ->
      let a_ptr, b_ptr, c_ptr, m, n, k =
        match ps with
        | [ a; bb; c; m; n; k ] -> (a, bb, c, m, n, k)
        | _ -> assert false
      in
      let c1 = Builder.const_i b 1 in
      let da = Builder.make_tensor_desc b a_ptr ~sizes:[ m; k ] ~strides:[ k; c1 ] ~dtype:Dtype.F16 in
      let db = Builder.make_tensor_desc b b_ptr ~sizes:[ k; n ] ~strides:[ n; c1 ] ~dtype:Dtype.F16 in
      let dc = Builder.make_tensor_desc b c_ptr ~sizes:[ m; n ] ~strides:[ n; c1 ] ~dtype:Dtype.F16 in
      let pid_m = Builder.program_id b 0 in
      let pid_n = Builder.program_id b 1 in
      let offs_m = Builder.mul b pid_m (Builder.const_i b s.bm) in
      let offs_n = Builder.mul b pid_n (Builder.const_i b s.bn) in
      let acc0 = Builder.zeros b [ s.bm; s.bn ] Dtype.F32 in
      let shape = [ s.bm; s.bn ] in
      let results =
        Builder.for_ b ~lb:(Builder.const_i b 0) ~ub:k ~step:(Builder.const_i b s.bk)
          ~inits:[ acc0 ]
          (fun iv iters ->
            let acc = List.hd iters in
            let at = Builder.tma_load b da ~offsets:[ offs_m; iv ] ~shape:[ s.bm; s.bk ] in
            let bt = Builder.tma_load b db ~offsets:[ iv; offs_n ] ~shape:[ s.bk; s.bn ] in
            let acc = Builder.dot b at bt acc in
            let acc =
              List.fold_left (fun x op -> emit_ew b shape s.const x op) acc s.loop_chain
            in
            [ acc ])
      in
      let out =
        List.fold_left
          (fun x op -> emit_ew b shape s.const x op)
          (List.hd results) s.epi_chain
      in
      let out16 = Builder.cast b out (Types.tensor shape Dtype.F16) in
      Builder.tma_store b dc ~offsets:[ offs_m; offs_n ] out16)

(* ------------------------------------------------------------------ *)
(* Differential execution                                              *)
(* ------------------------------------------------------------------ *)

let interp_golden kernel (s : spec) ~grid_m ~grid_n =
  let m = grid_m * s.bm and n = grid_n * s.bn in
  let kk = s.trip * s.bk in
  let a = Tensor.random ~dtype:Dtype.F16 ~seed:41 [| m; kk |] in
  let b = Tensor.random ~dtype:Dtype.F16 ~seed:42 [| kk; n |] in
  let c = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  ignore
    (Interp.run_grid ~grid:(grid_m, grid_n, 1) kernel
       [ Interp.RTensor a; Interp.RTensor b; Interp.RTensor c; Interp.RInt m;
         Interp.RInt n; Interp.RInt kk ]);
  (a, b, c)

let sim_output (compiled : Tawa_core.Flow.compiled) (s : spec) ~grid_m ~grid_n ~a ~b =
  let m = grid_m * s.bm and n = grid_n * s.bn in
  let kk = s.trip * s.bk in
  let c = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  ignore
    (Launch.run_grid_functional ~cfg:Config.functional_test compiled.Tawa_core.Flow.program
       ~params:
         [ Sim.Rtensor a; Sim.Rtensor b; Sim.Rtensor c; Sim.Rint m; Sim.Rint n;
           Sim.Rint kk ]
       ~grid:(grid_m, grid_n, 1));
  c

let check_spec ?(grid_m = 2) ?(grid_n = 2) (s : spec) compile_fn =
  let kernel = build_kernel s in
  Verifier.verify kernel;
  let a, b, golden = interp_golden kernel s ~grid_m ~grid_n in
  let compiled = compile_fn kernel in
  Verifier.verify compiled.Tawa_core.Flow.transformed;
  let got = sim_output compiled s ~grid_m ~grid_n ~a ~b in
  Tensor.max_abs_diff golden got = 0.0

let ws_compile ~d ~p kernel =
  Tawa_core.Flow.compile
    ~options:
      { Tawa_core.Flow.default_options with aref_depth = d; mma_depth = p; num_consumer_wgs = 1;
        persistent = false; use_coarse = false }
    kernel

let prop_fuzz_ws =
  QCheck.Test.make ~name:"fuzz: random kernels, warp-specialized == interp" ~count:40
    arb_spec
    (fun s -> check_spec s (ws_compile ~d:2 ~p:2))

let prop_fuzz_ws_deep =
  QCheck.Test.make ~name:"fuzz: random kernels, D=4/P=3 == interp" ~count:20 arb_spec
    (fun s -> check_spec s (ws_compile ~d:4 ~p:3))

let prop_fuzz_sw_pipeline =
  QCheck.Test.make ~name:"fuzz: random kernels, cp.async pipeline == interp" ~count:25
    arb_spec
    (fun s -> check_spec s (Tawa_core.Flow.compile_sw_pipelined ~stages:3))

let prop_fuzz_naive =
  QCheck.Test.make ~name:"fuzz: random kernels, naive loads == interp" ~count:20 arb_spec
    (fun s -> check_spec s Tawa_core.Flow.compile_naive)

let prop_fuzz_persistent =
  QCheck.Test.make ~name:"fuzz: random kernels, persistent == interp" ~count:20 arb_spec
    (fun s ->
      check_spec s (fun kernel ->
          Tawa_core.Flow.compile
            ~options:
              { Tawa_core.Flow.default_options with aref_depth = 2; mma_depth = 1; num_consumer_wgs = 1;
                persistent = true; use_coarse = false }
            kernel))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    qsuite "fuzz.differential"
      [ prop_fuzz_ws; prop_fuzz_ws_deep; prop_fuzz_sw_pipeline; prop_fuzz_naive;
        prop_fuzz_persistent ];
  ]
