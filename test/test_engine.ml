(* Differential tests pinning the decoded (closure-compiled) engine to
   the tree-walking reference interpreter, bit for bit: same cycles,
   same stats, same functional tensors, same error messages — across
   hand-built ISA programs, compiled frontend kernels, and the fuzz
   corpus, in both functional and timing modes. Also property-tests
   the typed register planes against an rt-array model, and pins the
   satellite fixes of this PR (fence release on Exit, ring deadlock
   diagnostics, the Ldg bandwidth config knob, engine selection and
   the decode cache). *)

open Tawa_tensor
open Tawa_ir
open Tawa_machine
open Tawa_gpusim
module Flow = Tawa_core.Flow

let mk_program ?(allocs = []) ?(num_mbarriers = 0) ?(arrive = [||]) ?(num_rings = 0)
    ?(persistent = false) ?(param_tys = []) streams =
  {
    Isa.name = "t";
    param_tys;
    streams;
    allocs;
    num_mbarriers;
    mbar_arrive_counts = arrive;
    mbar_resettable = Array.map (fun _ -> true) arrive;
    num_rings;
    persistent;
    grid_axes = 3;
    prov = Isa.no_prov;
  }

let stream ?(role = Op.Consumer) ?(coop = 1) instrs =
  { Isa.role; coop; instrs = Array.of_list instrs }

let cfg = Config.h100

(* ------------------------------------------------------------------ *)
(* Outcome equality (exact)                                            *)
(* ------------------------------------------------------------------ *)

(* Stall attribution and channel occupancy must also match bit for bit
   (PR 5 telemetry): both records contain only scalars and float
   arrays, so structural equality is exact float equality. *)
let profiles_equal (a : Sim.profile) (b : Sim.profile) =
  a.Sim.wall = b.Sim.wall
  && a.Sim.wg_profs = b.Sim.wg_profs
  && a.Sim.chan_profs = b.Sim.chan_profs

let outcomes_equal (a : Sim.outcome) (b : Sim.outcome) =
  a.Sim.cycles = b.Sim.cycles
  && a.Sim.instructions = b.Sim.instructions
  && a.Sim.stats.Sim.tc_busy = b.Sim.stats.Sim.tc_busy
  && a.Sim.stats.Sim.tma_busy = b.Sim.stats.Sim.tma_busy
  && a.Sim.stats.Sim.tma_bytes = b.Sim.stats.Sim.tma_bytes
  && a.Sim.stats.Sim.wgmma_count = b.Sim.stats.Sim.wgmma_count
  && a.Sim.stats.Sim.tma_count = b.Sim.stats.Sim.tma_count
  && a.Sim.stats.Sim.steps = b.Sim.stats.Sim.steps
  && profiles_equal a.Sim.profile b.Sim.profile

(* Run one CTA of a hand-built program under both engines. [mk_pop]
   builds a fresh queue per engine run (queues are stateful). *)
let run_both ?(params = []) ?(mk_pop = fun () -> Launch.no_queue) ?(cfg = cfg) p =
  let run engine =
    Engine.run_cta
      ~cfg:{ cfg with Config.engine = Some engine }
      ~program:p ~params ~num_programs:[| 4; 4; 1 |] ~pop_global:(mk_pop ()) ()
  in
  (run Config.Reference, run Config.Decoded)

let check_both ?params ?mk_pop ?cfg name p =
  let r, d = run_both ?params ?mk_pop ?cfg p in
  Alcotest.(check bool)
    (Printf.sprintf "%s: decoded == reference (%.2f vs %.2f cycles, %d vs %d steps)"
       name d.Sim.cycles r.Sim.cycles d.Sim.stats.Sim.steps r.Sim.stats.Sim.steps)
    true (outcomes_equal r d)

(* Both engines must fail with the IDENTICAL error message. *)
let run_both_err ?(params = []) p =
  let run engine =
    try
      ignore
        (Engine.run_cta
           ~cfg:{ cfg with Config.engine = Some engine }
           ~program:p ~params ~num_programs:[| 4; 4; 1 |]
           ~pop_global:Launch.no_queue ());
      None
    with Sim.Sim_error msg -> Some msg
  in
  (run Config.Reference, run Config.Decoded)

(* ------------------------------------------------------------------ *)
(* Hand-built ISA differential                                         *)
(* ------------------------------------------------------------------ *)

let test_scalar_mix () =
  check_both "scalar mix"
    (mk_program
       [ stream
           [ Isa.Mov { dst = 0; src = Isa.Fimm 2.5 };
             Isa.Alu { op = Op.Add; dst = 1; a = Isa.Reg 0; b = Isa.Imm 3 };
             Isa.Cmp { op = Op.Lt; dst = 2; a = Isa.Reg 1; b = Isa.Fimm 6.0 };
             Isa.Sel { dst = 3; cond = Isa.Reg 2; a = Isa.Reg 1; b = Isa.Imm 9 };
             Isa.Alu { op = Op.Max; dst = 4; a = Isa.Imm 7; b = Isa.Imm (-2) };
             Isa.Pid { dst = 5; axis = 0 };
             Isa.Npid { dst = 6; axis = 1 };
             Isa.Exit ] ]);
  check_both "branching loop"
    (mk_program
       [ stream
           [ Isa.Mov { dst = 0; src = Isa.Imm 0 };
             Isa.Cmp { op = Op.Lt; dst = 1; a = Isa.Reg 0; b = Isa.Imm 10 };
             Isa.Brz { cond = Isa.Reg 1; target = 5 };
             Isa.Alu { op = Op.Add; dst = 0; a = Isa.Reg 0; b = Isa.Imm 1 };
             Isa.Bra { target = 1 };
             Isa.Exit ] ])

let test_tma_mbar () =
  let rows = 64 and cols = 64 in
  check_both "tma + mbar wait" ~params:[ Sim.Rnone ]
    (mk_program ~num_mbarriers:2 ~arrive:[| 1; 1 |]
       ~allocs:[ { Isa.alloc_id = 0; slots = 2; bytes_per_slot = rows * cols * 2; label = "t" } ]
       ~param_tys:[ Types.ptr Dtype.F16 ]
       [ stream
           [ Isa.Mkdesc { dst = 1; ptr = Isa.Reg 0; sizes = []; strides = []; dtype = Dtype.F16 };
             Isa.Tma_load
               { desc = Isa.Reg 1; offs = [ Isa.Imm 0; Isa.Imm 0 ];
                 dst = { Isa.alloc = 0; slot = Isa.Imm 0 }; rows; cols; dtype = Dtype.F16;
                 full = { Isa.base = 0; index = Isa.Imm 0 } };
             Isa.Tma_load
               { desc = Isa.Reg 1; offs = [ Isa.Imm 0; Isa.Imm 0 ];
                 dst = { Isa.alloc = 0; slot = Isa.Imm 1 }; rows; cols; dtype = Dtype.F16;
                 full = { Isa.base = 1; index = Isa.Imm 0 } };
             Isa.Mbar_wait { bar = { Isa.base = 1; index = Isa.Imm 0 }; target = Isa.Imm 1 };
             Isa.Exit ] ])

let test_cross_wg_wake () =
  (* Consumer blocks on the mbar before the producer arrives: exercises
     the decoded engine's event-driven wake path. The Nops skew the
     producer's clock so the consumer genuinely blocks. *)
  check_both "mbar producer/consumer"
    (mk_program ~num_mbarriers:1 ~arrive:[| 1 |]
       [ stream ~role:Op.Producer
           [ Isa.Nop; Isa.Nop; Isa.Nop; Isa.Nop;
             Isa.Mbar_arrive { base = 0; index = Isa.Imm 0 }; Isa.Exit ];
         stream
           [ Isa.Mbar_wait { bar = { Isa.base = 0; index = Isa.Imm 0 }; target = Isa.Imm 1 };
             Isa.Exit ] ]);
  check_both "ring producer/consumer" ~params:[ Sim.Rnone ]
    (mk_program ~num_rings:1 ~param_tys:[ Types.ptr Dtype.F16 ]
       ~allocs:[ { Isa.alloc_id = 0; slots = 2; bytes_per_slot = 64; label = "r" } ]
       [ stream ~role:Op.Producer
           [ Isa.Mkdesc { dst = 1; ptr = Isa.Reg 0; sizes = []; strides = []; dtype = Dtype.F16 };
             Isa.Cp_async
               { ring = 0; desc = Isa.Reg 1; offs = [ Isa.Imm 0; Isa.Imm 0 ];
                 dst = { Isa.alloc = 0; slot = Isa.Imm 0 }; rows = 4; cols = 4;
                 dtype = Dtype.F16; last = true };
             Isa.Exit ];
         stream
           [ Isa.Cp_wait_ring { ring = 0; target = Isa.Imm 1 }; Isa.Exit ] ])

let test_fence_and_wgmma () =
  check_both "two-wg fence"
    (mk_program
       [ stream [ Isa.Nop; Isa.Fence; Isa.Exit ]; stream [ Isa.Fence; Isa.Exit ] ]);
  check_both "wgmma pipeline"
    (mk_program
       [ stream
           [ Isa.Wgmma { a = Isa.Wreg 0; b = Isa.Wreg 1; acc = 2; m = 64; n = 64; k = 16;
                         dtype = Dtype.F16 };
             Isa.Wgmma_commit;
             Isa.Wgmma { a = Isa.Wreg 0; b = Isa.Wreg 1; acc = 2; m = 64; n = 64; k = 16;
                         dtype = Dtype.F16 };
             Isa.Wgmma_commit;
             Isa.Wgmma_wait 0;
             Isa.Exit ] ])

let test_persistent_queue () =
  let mk_pop () = Launch.queue_of_list [ 0; 3; 5; 14 ] in
  check_both "persistent work queue" ~mk_pop
    (mk_program ~persistent:true
       [ stream
           [ (* 0 *) Isa.Workq_pop { dst = 0 };
             (* 1 *) Isa.Cmp { op = Op.Lt; dst = 1; a = Isa.Reg 0; b = Isa.Imm 0 };
             (* 2 *) Isa.Brnz { cond = Isa.Reg 1; target = 4 };
             (* 3 *) Isa.Bra { target = 0 };
             (* 4 *) Isa.Exit ] ])

(* ------------------------------------------------------------------ *)
(* Satellite regressions                                               *)
(* ------------------------------------------------------------------ *)

(* A WG blocked on a fence whose peer exits without fencing must be
   released by the exit (live count shrinks), not deadlock. *)
let test_fence_released_on_exit () =
  let p =
    mk_program
      [ stream [ Isa.Fence; Isa.Exit ]; stream [ Isa.Nop; Isa.Nop; Isa.Exit ] ]
  in
  check_both "fence released by peer exit" p

(* Deadlock diagnostics carry the observed completion count, and both
   engines produce the identical report. *)
let test_deadlock_diagnostics () =
  let ring_p =
    mk_program ~num_rings:1
      [ stream [ Isa.Cp_wait_ring { ring = 0; target = Isa.Imm 2 }; Isa.Exit ] ]
  in
  (match run_both_err ring_p with
  | Some mr, Some md ->
    Alcotest.(check string) "ring deadlock report identical" mr md;
    Alcotest.(check bool) "ring report has (have 0)" true
      (Astring.String.is_infix ~affix:"ring 0 >= 2 (have 0)" mr)
  | _ -> Alcotest.fail "expected both engines to deadlock");
  let mbar_p =
    mk_program ~num_mbarriers:1 ~arrive:[| 1 |]
      [ stream
          [ Isa.Mbar_arrive { base = 0; index = Isa.Imm 0 };
            Isa.Mbar_wait { bar = { Isa.base = 0; index = Isa.Imm 0 }; target = Isa.Imm 3 };
            Isa.Exit ] ]
  in
  match run_both_err mbar_p with
  | Some mr, Some md ->
    Alcotest.(check string) "mbar deadlock report identical" mr md;
    Alcotest.(check bool) "mbar report has (have 1)" true
      (Astring.String.is_infix ~affix:"mbar 0 >= 3 (have 1)" mr)
  | _ -> Alcotest.fail "expected both engines to deadlock"

(* The Ldg gather bandwidth is a config knob (was a magic 12.0). *)
let test_ldg_bandwidth_config () =
  let p bytes_rows =
    mk_program ~param_tys:[ Types.ptr Dtype.F16 ]
      [ stream
          [ Isa.Mkdesc { dst = 1; ptr = Isa.Reg 0; sizes = []; strides = []; dtype = Dtype.F16 };
            Isa.Ldg
              { dst = 2; desc = Isa.Reg 1; offs = [ Isa.Imm 0; Isa.Imm 0 ];
                rows = bytes_rows; cols = 4; dtype = Dtype.F16 };
            Isa.Exit ] ]
  in
  let cycles ~cfg =
    let o, _d = run_both ~params:[ Sim.Rnone ] ~cfg (p 4) in
    Alcotest.(check bool) "ldg engines agree" true (outcomes_equal o _d);
    o.Sim.cycles
  in
  let base = cycles ~cfg in
  let expect = 20.0 +. cfg.Config.tma_latency +. (32.0 /. cfg.Config.ldg_bytes_per_cycle) in
  Alcotest.(check (float 1e-9)) "ldg cost uses config field" expect base;
  let slow = cycles ~cfg:{ cfg with Config.ldg_bytes_per_cycle = 6.0 } in
  Alcotest.(check (float 1e-9)) "halving bandwidth doubles gather time"
    (20.0 +. cfg.Config.tma_latency +. (32.0 /. 6.0))
    slow

(* ------------------------------------------------------------------ *)
(* Engine selection + decode cache                                     *)
(* ------------------------------------------------------------------ *)

let test_engine_selection () =
  Alcotest.(check bool) "cfg.engine = Reference selected" true
    (Engine.resolve { cfg with Config.engine = Some Config.Reference } = Config.Reference);
  Alcotest.(check bool) "cfg.engine = Decoded selected" true
    (Engine.resolve { cfg with Config.engine = Some Config.Decoded } = Config.Decoded);
  Alcotest.(check bool) "collect_trace no longer forces an engine swap" true
    (Engine.resolve
       { cfg with Config.engine = Some Config.Decoded; collect_trace = true }
    = Config.Decoded);
  Engine.set_forced (Some Config.Reference);
  let forced = Engine.resolve { cfg with Config.engine = Some Config.Decoded } in
  Engine.set_forced None;
  Alcotest.(check bool) "forced override beats cfg" true (forced = Config.Reference);
  if Sys.getenv_opt "TAWA_ENGINE" = None then
    Alcotest.(check bool) "default engine is Decoded" true
      (Engine.resolve { cfg with Config.engine = None } = Config.Decoded)

let test_decode_cache () =
  if Progcache.is_enabled () then begin
    Engine.clear_decode_cache ();
    let p = mk_program [ stream [ Isa.Nop; Isa.Exit ] ] in
    let dcfg = { cfg with Config.engine = Some Config.Decoded } in
    ignore (Engine.prepare ~cfg:dcfg p);
    ignore (Engine.prepare ~cfg:dcfg p);
    let s = Engine.decode_cache_stats () in
    Alcotest.(check int) "one decode" 1 s.Progcache.misses;
    Alcotest.(check int) "one cache hit" 1 s.Progcache.hits;
    (* A different cost model must miss (costs are folded at decode). *)
    ignore
      (Engine.prepare ~cfg:{ dcfg with Config.scalar_cycles = 99.0 } p);
    let s = Engine.decode_cache_stats () in
    Alcotest.(check int) "config change misses" 2 s.Progcache.misses
  end

(* ------------------------------------------------------------------ *)
(* Typed register planes vs rt-array model                             *)
(* ------------------------------------------------------------------ *)

type wop =
  | Wint of int * int
  | Wfloat of int * float
  | Wbool of int * bool
  | Wnone of int
  | Wcopy of int * int

let gen_wop =
  QCheck.Gen.(
    let reg = int_range 0 130 in
    oneof
      [ map2 (fun r v -> Wint (r, v)) reg (int_range (-1000000) 1000000);
        map2 (fun r v -> Wfloat (r, v)) reg (float_range (-1e6) 1e6);
        map2 (fun r v -> Wbool (r, v)) reg bool;
        map (fun r -> Wnone r) reg;
        map2 (fun a b -> Wcopy (a, b)) reg reg ])

let wop_print = function
  | Wint (r, v) -> Printf.sprintf "r%d<-i%d" r v
  | Wfloat (r, v) -> Printf.sprintf "r%d<-f%g" r v
  | Wbool (r, v) -> Printf.sprintf "r%d<-b%b" r v
  | Wnone r -> Printf.sprintf "r%d<-none" r
  | Wcopy (a, b) -> Printf.sprintf "r%d<-r%d" b a

let arb_wops =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map wop_print l))
    QCheck.Gen.(list_size (int_range 0 60) gen_wop)

(* Reference coercions on the boxed model value (as_int / as_float /
   as_bool from the reference engine); [None] = must raise. *)
let model_int = function
  | Sim.Rint i -> Some i
  | Sim.Rbool b -> Some (if b then 1 else 0)
  | Sim.Rfloat f -> Some (int_of_float f)
  | _ -> None

let model_float = function
  | Sim.Rfloat f -> Some f
  | Sim.Rint i -> Some (Float.of_int i)
  | Sim.Rbool b -> Some (if b then 1.0 else 0.0)
  | _ -> None

let model_bool = function
  | Sim.Rbool b -> Some b
  | Sim.Rint i -> Some (i <> 0)
  | Sim.Rfloat f -> Some (f <> 0.0)
  | _ -> None

let coerces_like want got =
  match (want, got ()) with
  | Some w, Ok g -> w = g
  | None, Error (Sim.Sim_error _) -> true
  | _ -> false

let attempt f = try Ok (f ()) with e -> Error e

let prop_planes_model =
  QCheck.Test.make ~name:"planes: typed writes/copies match rt-array model" ~count:200
    arb_wops (fun ops ->
      let p = Decode.make_planes 64 in
      let model = Array.make 200 (Sim.Rint 0) in
      List.iter
        (function
          | Wint (r, v) ->
            Decode.set_int p r v;
            model.(r) <- Sim.Rint v
          | Wfloat (r, v) ->
            Decode.set_float p r v;
            model.(r) <- Sim.Rfloat v
          | Wbool (r, v) ->
            Decode.set_bool p r v;
            model.(r) <- Sim.Rbool v
          | Wnone r ->
            Decode.set_none p r;
            model.(r) <- Sim.Rnone
          | Wcopy (a, b) ->
            Decode.copy_reg p ~src:a ~dst:b;
            model.(b) <- model.(a))
        ops;
      (* Reads past any written register (150..199) must see the
         default Rint 0, like the reference's fixed-fill file. *)
      Array.for_all Fun.id
        (Array.init 200 (fun r ->
             Decode.get_rt p r = model.(r)
             && coerces_like (model_int model.(r)) (fun () ->
                    attempt (fun () -> Decode.get_int p r))
             && coerces_like (model_float model.(r)) (fun () ->
                    attempt (fun () -> Decode.get_float p r))
             && coerces_like (model_bool model.(r)) (fun () ->
                    attempt (fun () -> Decode.get_bool p r)))))

(* ------------------------------------------------------------------ *)
(* Compiled-kernel differential (functional + timing)                  *)
(* ------------------------------------------------------------------ *)

let gemm_functional_diff compiled ~bm ~bn ~kk ~grid_m ~grid_n =
  let m = grid_m * bm and n = grid_n * bn in
  let a = Tensor.random ~dtype:Dtype.F16 ~seed:7 [| m; kk |] in
  let b = Tensor.random ~dtype:Dtype.F16 ~seed:8 [| kk; n |] in
  let run engine =
    let c = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
    let fcfg = { Config.functional_test with Config.engine = Some engine } in
    let cycles =
      Launch.run_grid_functional ~cfg:fcfg compiled.Flow.program
        ~params:
          [ Sim.Rtensor a; Sim.Rtensor b; Sim.Rtensor c; Sim.Rint m; Sim.Rint n;
            Sim.Rint kk ]
        ~grid:(grid_m, grid_n, 1)
    in
    (c, cycles)
  in
  let c_r, cy_r = run Config.Reference in
  let c_d, cy_d = run Config.Decoded in
  Tensor.equal c_r c_d && cy_r = cy_d

let gemm_timing_diff compiled ~bm ~bn ~kk ~grid_m ~grid_n =
  let m = grid_m * bm and n = grid_n * bn in
  let run engine =
    Launch.estimate
      ~cfg:{ cfg with Config.engine = Some engine }
      compiled.Flow.program
      ~params:[ Sim.Rnone; Sim.Rnone; Sim.Rnone; Sim.Rint m; Sim.Rint n; Sim.Rint kk ]
      ~grid:(grid_m, grid_n, 1) ~flops:1e9
  in
  let r = run Config.Reference and d = run Config.Decoded in
  r.Launch.cycles = d.Launch.cycles
  && r.Launch.stats.Sim.tc_busy = d.Launch.stats.Sim.tc_busy
  && r.Launch.stats.Sim.tma_busy = d.Launch.stats.Sim.tma_busy
  && r.Launch.stats.Sim.steps = d.Launch.stats.Sim.steps

let fuzz_compiles (s : Test_fuzz.spec) =
  [ ("ws d2p2", Test_fuzz.ws_compile ~d:2 ~p:2);
    ("sw-pipeline", Flow.compile_sw_pipelined ~stages:3);
    ( "persistent",
      Flow.compile
        ~options:
          { Flow.default_options with aref_depth = 2; mma_depth = 1; num_consumer_wgs = 1; persistent = true;
            use_coarse = false } ) ]
  |> List.map (fun (name, f) -> (name, f (Test_fuzz.build_kernel s)))

let prop_engine_fuzz =
  QCheck.Test.make
    ~name:"fuzz: decoded == reference across pipelines (functional + timing)" ~count:20
    Test_fuzz.arb_spec (fun s ->
      List.for_all
        (fun (_, compiled) ->
          gemm_functional_diff compiled ~bm:s.Test_fuzz.bm ~bn:s.Test_fuzz.bn
            ~kk:(s.Test_fuzz.trip * s.Test_fuzz.bk) ~grid_m:2 ~grid_n:2
          && gemm_timing_diff compiled ~bm:s.Test_fuzz.bm ~bn:s.Test_fuzz.bn
               ~kk:(s.Test_fuzz.trip * s.Test_fuzz.bk) ~grid_m:2 ~grid_n:2)
        (fuzz_compiles s))

(* Coarse-pipelined attention: the remaining frontend shape (softmax
   running state, Tile_select/Tile_cmp, transposed SMEM views). *)
let test_attention_diff () =
  let kernel = Tawa_frontend.Kernels.attention ~block_m:16 ~block_n:16 ~head_dim:8 () in
  let compiled =
    Flow.compile
      ~options:
        { Flow.default_options with aref_depth = 2; mma_depth = 1; num_consumer_wgs = 1; persistent = false;
          use_coarse = true }
      kernel
  in
  let l = 32 and d = 8 in
  let q = Tensor.random ~dtype:Dtype.F16 ~seed:1 [| l; d |] in
  let kt = Tensor.random ~dtype:Dtype.F16 ~seed:2 [| l; d |] in
  let v = Tensor.random ~dtype:Dtype.F16 ~seed:3 [| l; d |] in
  let run engine =
    let o = Tensor.create ~dtype:Dtype.F16 [| l; d |] in
    let fcfg = { Config.functional_test with Config.engine = Some engine } in
    let cycles =
      Launch.run_grid_functional ~cfg:fcfg compiled.Flow.program
        ~params:[ Sim.Rtensor q; Sim.Rtensor kt; Sim.Rtensor v; Sim.Rtensor o; Sim.Rint l ]
        ~grid:(l / 16, 1, 1)
    in
    (o, cycles)
  in
  let o_r, cy_r = run Config.Reference in
  let o_d, cy_d = run Config.Decoded in
  Alcotest.(check bool) "attention tensors bit-identical" true (Tensor.equal o_r o_d);
  Alcotest.(check (float 0.0)) "attention cycles identical" cy_r cy_d

(* Cooperative consumer warp groups (coop > 1 divides tile costs). *)
let test_coop_diff () =
  let tiles = { Tawa_frontend.Kernels.block_m = 16; block_n = 16; block_k = 8 } in
  let compiled =
    Flow.compile
      ~options:
        { Flow.default_options with aref_depth = 2; mma_depth = 1; num_consumer_wgs = 2; persistent = false;
          use_coarse = false }
      (Tawa_frontend.Kernels.gemm ~tiles ())
  in
  Alcotest.(check bool) "coop=2 functional diff" true
    (gemm_functional_diff compiled ~bm:16 ~bn:16 ~kk:16 ~grid_m:2 ~grid_n:2);
  Alcotest.(check bool) "coop=2 timing diff" true
    (gemm_timing_diff compiled ~bm:16 ~bn:16 ~kk:16 ~grid_m:2 ~grid_n:2)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "engine.differential",
      [
        Alcotest.test_case "scalar mix + loop" `Quick test_scalar_mix;
        Alcotest.test_case "tma + mbar wait" `Quick test_tma_mbar;
        Alcotest.test_case "cross-wg wake (mbar, ring)" `Quick test_cross_wg_wake;
        Alcotest.test_case "fence + wgmma" `Quick test_fence_and_wgmma;
        Alcotest.test_case "persistent work queue" `Quick test_persistent_queue;
        Alcotest.test_case "attention coarse pipeline" `Quick test_attention_diff;
        Alcotest.test_case "cooperative warp groups" `Quick test_coop_diff;
      ]
      @ qsuite [ prop_engine_fuzz ] );
    ( "engine.regressions",
      [
        Alcotest.test_case "fence released on exit" `Quick test_fence_released_on_exit;
        Alcotest.test_case "deadlock diagnostics" `Quick test_deadlock_diagnostics;
        Alcotest.test_case "ldg bandwidth config" `Quick test_ldg_bandwidth_config;
        Alcotest.test_case "engine selection" `Quick test_engine_selection;
        Alcotest.test_case "decode cache" `Quick test_decode_cache;
      ] );
    ("engine.planes", qsuite [ prop_planes_model ]);
  ]
