(* Tests for the deep profiler (PR 10, DESIGN.md §15): per-op cycle
   attribution must be bit-identical across the reference and decoded
   engines, attribution must conserve (Σ per-op cycles = Σ per-WG
   bucket totals = wall × WG-count), the critical path of a
   warp-specialized GEMM must cross an aref channel edge with the same
   structure under both engines, aref ring event histories reconstruct
   slot timelines, the Chrome trace export emits valid monotone
   Perfetto JSON, the new JSON parser round-trips the emitter, and the
   metric registry snapshot stays deterministic. *)

open Tawa_machine
open Tawa_gpusim
module Flow = Tawa_core.Flow
module Json = Tawa_obs.Json
module Prof = Tawa_obs.Prof
module Registry = Tawa_obs.Registry
module Stall = Tawa_obs.Stall
module Trace = Tawa_obs.Trace

(* ------------------------------------------------------------------ *)
(* Kernel zoo (mirrors test_obs's differential corpus)                 *)
(* ------------------------------------------------------------------ *)

let gemm_params ~m ~n ~kk =
  [ Sim.Rnone; Sim.Rnone; Sim.Rnone; Sim.Rint m; Sim.Rint n; Sim.Rint kk ]

let ws_gemm ?(persistent = false) ?(coop = 1) ?(d = 2) ?(p = 1) () =
  let tiles = { Tawa_frontend.Kernels.block_m = 16; block_n = 16; block_k = 8 } in
  Flow.compile
    ~options:
      { Flow.default_options with aref_depth = d; mma_depth = p;
        num_consumer_wgs = coop; persistent; use_coarse = false }
    (Tawa_frontend.Kernels.gemm ~tiles ())

let attention () =
  Flow.compile
    ~options:
      { Flow.default_options with aref_depth = 2; mma_depth = 1;
        num_consumer_wgs = 1; persistent = false; use_coarse = true }
    (Tawa_frontend.Kernels.attention ~block_m:16 ~block_n:16 ~head_dim:8 ())

let estimate engine (compiled : Flow.compiled) ~params ~grid =
  Launch.estimate
    ~cfg:{ Config.h100 with Config.engine = Some engine }
    compiled.Flow.program ~params ~grid ~flops:1e6

(* ------------------------------------------------------------------ *)
(* Per-op attribution: engines agree bit for bit                       *)
(* ------------------------------------------------------------------ *)

let check_per_op_diff name (compiled : Flow.compiled) ~params ~grid =
  let program = compiled.Flow.program in
  let r = estimate Config.Reference compiled ~params ~grid in
  let d = estimate Config.Decoded compiled ~params ~grid in
  match (r.Launch.profile, d.Launch.profile) with
  | Some pr, Some pd ->
    let opr = Sim.per_op ~program pr and opd = Sim.per_op ~program pd in
    Alcotest.(check bool)
      (name ^ ": per-op attribution bit-identical across engines") true
      (opr = opd);
    Alcotest.(check bool) (name ^ ": per-op table nonempty") true
      (Array.length opr > 0);
    (* Rows are sorted hottest-first and every row carries cycles. *)
    let sorted = ref true in
    Array.iteri
      (fun i o ->
        if i > 0 && o.Sim.o_cycles > opr.(i - 1).Sim.o_cycles then sorted := false)
      opr;
    Alcotest.(check bool) (name ^ ": rows sorted by cycles") true !sorted;
    Alcotest.(check bool) (name ^ ": rows all nonzero") true
      (Array.for_all (fun o -> o.Sim.o_cycles > 0.0) opr);
    (* The op table renders and mentions the hottest opcode. *)
    let tbl = Sim.op_table ~program pr in
    Alcotest.(check bool) (name ^ ": op table mentions hottest opcode") true
      (Astring.String.is_infix ~affix:opr.(0).Sim.o_name tbl)
  | _ -> Alcotest.fail (name ^ ": profile missing")

let test_per_op_gemm () =
  check_per_op_diff "ws gemm" (ws_gemm ())
    ~params:(gemm_params ~m:32 ~n:32 ~kk:16)
    ~grid:(2, 2, 1)

let test_per_op_attention () =
  check_per_op_diff "coarse attention" (attention ())
    ~params:[ Sim.Rnone; Sim.Rnone; Sim.Rnone; Sim.Rnone; Sim.Rint 32 ]
    ~grid:(2, 1, 1)

let test_per_op_persistent () =
  check_per_op_diff "persistent gemm"
    (ws_gemm ~persistent:true ())
    ~params:(gemm_params ~m:32 ~n:32 ~kk:16)
    ~grid:(2, 2, 1)

let test_per_op_coop () =
  check_per_op_diff "coop gemm" (ws_gemm ~coop:2 ())
    ~params:(gemm_params ~m:32 ~n:32 ~kk:16)
    ~grid:(2, 2, 1)

(* ------------------------------------------------------------------ *)
(* Conservation: Σ per-op = Σ per-WG buckets = wall × WG-count         *)
(* ------------------------------------------------------------------ *)

let prop_conservation =
  QCheck.Test.make
    ~name:"per-op cycles sum to bucket totals and wall x WG count" ~count:15
    QCheck.(quad (int_range 1 3) (int_range 1 2) (int_range 1 3) QCheck.bool)
    (fun (d, p, trip, persistent) ->
      let compiled = ws_gemm ~persistent ~d ~p () in
      let program = compiled.Flow.program in
      let t =
        estimate Config.Decoded compiled
          ~params:(gemm_params ~m:32 ~n:32 ~kk:(trip * 8))
          ~grid:(2, 2, 1)
      in
      match t.Launch.profile with
      | None -> false
      | Some prof ->
        let n = Float.of_int (Array.length prof.Sim.wg_profs) in
        let pool = prof.Sim.wall *. n in
        let tol = n *. 1e-6 *. Float.max 1.0 prof.Sim.wall in
        let bucket_total =
          Array.fold_left
            (fun acc (w : Sim.wg_prof) ->
              acc +. Array.fold_left ( +. ) 0.0 w.Sim.p_buckets)
            0.0 prof.Sim.wg_profs
        in
        let cell_total =
          Array.fold_left
            (fun acc (w : Sim.wg_prof) ->
              acc +. Array.fold_left ( +. ) 0.0 w.Sim.p_cells)
            0.0 prof.Sim.wg_profs
        in
        let op_total =
          Array.fold_left
            (fun acc (o : Sim.op_prof) -> acc +. o.Sim.o_cycles)
            0.0
            (Sim.per_op ~program prof)
        in
        Float.abs (bucket_total -. pool) <= tol
        && Float.abs (cell_total -. pool) <= tol
        && Float.abs (op_total -. pool) <= tol)

(* ------------------------------------------------------------------ *)
(* Critical path: recorder-driven runs under both engines              *)
(* ------------------------------------------------------------------ *)

(* Run one CTA of the warp-specialized GEMM under [engine] with a
   recorder attached; return the program, recorder, outcome and the
   computed critical path. *)
let recorded_run engine =
  let compiled = ws_gemm () in
  let program = compiled.Flow.program in
  let recorder = Prof.create () in
  let outcome =
    Engine.run_cta ~recorder
      ~cfg:{ Config.h100 with Config.engine = Some engine }
      ~program
      ~params:(gemm_params ~m:32 ~n:32 ~kk:16)
      ~num_programs:[| 2; 2; 1 |]
      ~pop_global:(fun () -> -1)
      ()
  in
  let wg_times =
    Array.map (fun (w : Sim.wg_prof) -> w.Sim.p_time) outcome.Sim.profile.Sim.wg_profs
  in
  (program, recorder, outcome, Prof.critical_path recorder ~wg_times)

let test_critical_path_aref () =
  let program, recorder, _, path = recorded_run Config.Reference in
  Alcotest.(check bool) "events recorded" true
    (Prof.num_completions recorder > 0 && Prof.num_waits recorder > 0);
  Alcotest.(check bool) "path nonempty" true (path <> []);
  (* The acceptance criterion: on a warp-specialized GEMM the critical
     path must cross an aref channel edge (producer->consumer handoff). *)
  Alcotest.(check bool) "path crosses an aref channel" true
    (Prof.path_crosses path ~chans:(fun c -> Sim.is_aref_chan ~program c));
  (* Segments are contiguous in time and run launch -> finish. *)
  let rec contiguous = function
    | (a : Prof.path_step) :: (b :: _ as rest) ->
      a.Prof.st_t1 >= a.Prof.st_t0 -. 1e-9
      && b.Prof.st_t0 >= a.Prof.st_t0 -. 1e-9
      && contiguous rest
    | [ a ] -> a.Prof.st_t1 >= a.Prof.st_t0 -. 1e-9
    | [] -> true
  in
  Alcotest.(check bool) "segments ordered launch -> finish" true
    (contiguous path);
  (match path with
  | head :: _ ->
    Alcotest.(check bool) "head starts at launch" true (head.Prof.st_t0 = 0.0)
  | [] -> ());
  (* The renderer names the channel edge with its aref label. *)
  let rendered =
    Prof.render_path path
      ~wg_label:(Sim.wg_label_of ~program)
      ~chan_label:(Sim.chan_label_of ~program)
      ~pc_label:(Sim.pc_label_of ~program)
  in
  Alcotest.(check bool) "render names an aref barrier" true
    (Astring.String.is_infix ~affix:".full[" rendered
    || Astring.String.is_infix ~affix:".empty[" rendered);
  (* The JSON form parses and has one record per step. *)
  let j = Prof.path_to_json path ~chan_label:(Sim.chan_label_of ~program) in
  match Json.parse (Json.to_string j) with
  | Json.List steps ->
    Alcotest.(check int) "json step count" (List.length path) (List.length steps)
  | _ -> Alcotest.fail "path json is not a list"

(* The walk is engine-independent: same segments, same channel edges,
   same times — only the dominant-op label may differ (the decoded
   engine attributes a fused cost block to its first pc). *)
let test_critical_path_engines_agree () =
  let _, _, oref, pref = recorded_run Config.Reference in
  let _, _, odec, pdec = recorded_run Config.Decoded in
  Alcotest.(check (float 0.0)) "wall identical" oref.Sim.cycles odec.Sim.cycles;
  Alcotest.(check int) "same number of segments" (List.length pref)
    (List.length pdec);
  let tol = 1e-6 *. Float.max 1.0 oref.Sim.cycles in
  List.iter2
    (fun (a : Prof.path_step) (b : Prof.path_step) ->
      Alcotest.(check int) "segment wg" a.Prof.st_wg b.Prof.st_wg;
      Alcotest.(check int) "edge channel" a.Prof.st_chan b.Prof.st_chan;
      Alcotest.(check int) "edge consumer" a.Prof.st_consumer b.Prof.st_consumer;
      Alcotest.(check bool) "segment times agree" true
        (Float.abs (a.Prof.st_t0 -. b.Prof.st_t0) <= tol
        && Float.abs (a.Prof.st_t1 -. b.Prof.st_t1) <= tol
        && Float.abs (a.Prof.st_edge_latency -. b.Prof.st_edge_latency) <= tol
        && Float.abs (a.Prof.st_slack -. b.Prof.st_slack) <= tol))
    pref pdec

(* Synthetic recorder: a two-WG ping over one channel. WG1 blocks on
   channel 0 from t=10 until WG0's put (issued t=5) completes at t=40;
   WG1 then runs to t=100. The path must be exactly two segments
   joined by the channel-0 edge: a step's edge fields describe the
   handoff leaving the segment's end, so the producer head carries
   them. *)
let test_critical_path_synthetic () =
  let r = Prof.create () in
  Prof.record_op r ~wg:0 ~pc:0 ~t0:0.0 ~t1:5.0;
  Prof.record_completion r ~chan:0 ~n:1 ~time:40.0 ~wg:0 ~pc:1 ~issue:5.0;
  Prof.record_wait r ~chan:0 ~wg:1 ~pc:2 ~target:1 ~start:10.0 ~ready:40.0
    ~resume:41.0;
  Prof.record_op r ~wg:1 ~pc:3 ~t0:41.0 ~t1:100.0;
  let path = Prof.critical_path r ~wg_times:[| 5.0; 100.0 |] in
  match path with
  | [ head; tail ] ->
    Alcotest.(check int) "head on producer WG" 0 head.Prof.st_wg;
    Alcotest.(check bool) "head covers issue window" true
      (head.Prof.st_t0 = 0.0 && Float.abs (head.Prof.st_t1 -. 5.0) <= 1e-9);
    Alcotest.(check int) "edge through channel 0" 0 head.Prof.st_chan;
    Alcotest.(check int) "edge wakes WG1" 1 head.Prof.st_consumer;
    Alcotest.(check bool) "edge latency = issue -> resume" true
      (Float.abs (head.Prof.st_edge_latency -. 36.0) <= 1e-9);
    Alcotest.(check int) "tail on consumer WG" 1 tail.Prof.st_wg;
    Alcotest.(check bool) "tail covers the woken window" true
      (Float.abs (tail.Prof.st_t0 -. 41.0) <= 1e-9
      && Float.abs (tail.Prof.st_t1 -. 100.0) <= 1e-9);
    Alcotest.(check int) "no edge leaves the final segment" (-1)
      tail.Prof.st_chan;
    Alcotest.(check int) "dominant op of the tail" 3 tail.Prof.st_top_pc
  | _ -> Alcotest.failf "expected 2 segments, got %d" (List.length path)

(* ------------------------------------------------------------------ *)
(* Timeline lanes: channel intervals and aref ring event history       *)
(* ------------------------------------------------------------------ *)

let test_channel_intervals () =
  let program, recorder, _, _ = recorded_run Config.Reference in
  let chans =
    Prof.channel_intervals recorder ~chan_label:(Sim.chan_label_of ~program)
  in
  let ops =
    Prof.op_intervals recorder
      ~wg_label:(Sim.wg_label_of ~program)
      ~pc_label:(Sim.pc_label_of ~program)
  in
  Alcotest.(check bool) "channel lanes nonempty" true (chans <> []);
  Alcotest.(check bool) "op lanes nonempty" true (ops <> []);
  List.iter
    (fun (lane, t0, t1, _) ->
      Alcotest.(check bool) "channel lane prefixed" true
        (Astring.String.is_prefix ~affix:"chan: " lane);
      Alcotest.(check bool) "interval well-formed" true (0.0 <= t0 && t0 <= t1))
    chans;
  List.iter
    (fun (_, t0, t1, _) ->
      Alcotest.(check bool) "op interval well-formed" true
        (0.0 <= t0 && t0 <= t1))
    ops;
  Alcotest.(check bool) "an aref lane is present" true
    (List.exists
       (fun (lane, _, _, _) ->
         Astring.String.is_infix ~affix:".full[" lane
         || Astring.String.is_infix ~affix:".empty[" lane)
       chans)

let test_ring_timeline () =
  let open Tawa_aref in
  let r : int Ring.t = Ring.create ~depth:2 in
  let ok name = function Semantics.Ok x -> x | _ -> Alcotest.fail name in
  ok "put 0" (Ring.put r ~iter:0 10);
  ok "put 1" (Ring.put r ~iter:1 11);
  ignore (ok "get 0" (Ring.get r ~iter:0) : int);
  ok "rel 0" (Ring.consumed r ~iter:0);
  ok "put 2" (Ring.put r ~iter:2 12);
  ignore (ok "get 1" (Ring.get r ~iter:1) : int);
  (* Blocked transitions leave no event. *)
  (match Ring.get r ~iter:3 with
  | Semantics.Blocked -> ()
  | _ -> Alcotest.fail "get 3 should block");
  let hist = Ring.history r in
  Alcotest.(check int) "six recorded transitions" 6 (List.length hist);
  (* History is in execution order with a strictly increasing clock. *)
  let steps = List.map (fun (e : Ring.event) -> e.Ring.ev_step) hist in
  Alcotest.(check bool) "clock strictly increases" true
    (List.sort_uniq compare steps = steps);
  let kinds = List.map (fun (e : Ring.event) -> e.Ring.ev_kind) hist in
  Alcotest.(check bool) "transition order preserved" true
    (kinds = [ `Put; `Put; `Get; `Consumed; `Put; `Get ]);
  (* Slot assignment is iter mod depth. *)
  List.iter
    (fun (e : Ring.event) ->
      Alcotest.(check int)
        (Printf.sprintf "slot of iter %d" e.Ring.ev_iter)
        (e.Ring.ev_iter mod 2) e.Ring.ev_slot)
    hist;
  let tl = Ring.timeline r in
  Alcotest.(check bool) "timeline nonempty" true (tl <> []);
  List.iter
    (fun (lane, t0, t1, _) ->
      Alcotest.(check bool) "span well-formed" true
        (Astring.String.is_prefix ~affix:"slot[" lane && 0.0 <= t0 && t0 <= t1))
    tl;
  (* iter 0 produced a closed full span and a closed borrowed span;
     iter 1's borrow and iter 2's full slot are still open. *)
  let labels = List.map (fun (_, _, _, l) -> l) tl in
  Alcotest.(check bool) "closed full span for iter 0" true
    (List.mem "full iter=0" labels);
  Alcotest.(check bool) "closed borrowed span for iter 0" true
    (List.mem "borrowed iter=0" labels);
  Alcotest.(check bool) "open spans closed at the clock" true
    (List.exists (fun l -> Astring.String.is_suffix ~affix:"(open)" l) labels)

(* ------------------------------------------------------------------ *)
(* Chrome trace export (satellite: valid, monotone, Perfetto-complete) *)
(* ------------------------------------------------------------------ *)

let field name e =
  match Json.member name e with
  | Some v -> v
  | None -> Alcotest.failf "trace event missing %S" name

let test_trace_shape () =
  let program, recorder, _, _ = recorded_run Config.Reference in
  let intervals =
    Prof.op_intervals recorder
      ~wg_label:(Sim.wg_label_of ~program)
      ~pc_label:(Sim.pc_label_of ~program)
    @ Prof.channel_intervals recorder ~chan_label:(Sim.chan_label_of ~program)
  in
  let doc = Trace.to_json (Trace.of_intervals intervals) in
  let parsed = Json.parse (Json.to_string doc) in
  let events =
    match Option.bind (Json.member "traceEvents" parsed) Json.to_list_opt with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents list"
  in
  Alcotest.(check bool) "events present" true (events <> []);
  (* Every event carries the Perfetto-required fields; timestamps are
     non-negative; complete events have non-negative durations and are
     emitted in non-decreasing ts order. *)
  let last_x = ref neg_infinity in
  List.iter
    (fun e ->
      let ph =
        match Json.to_str_opt (field "ph" e) with
        | Some ph -> ph
        | None -> Alcotest.fail "ph not a string"
      in
      Alcotest.(check bool) "name is a string" true
        (Json.to_str_opt (field "name" e) <> None);
      Alcotest.(check bool) "pid present" true
        (Json.to_int_opt (field "pid" e) <> None);
      Alcotest.(check bool) "tid present" true
        (Json.to_int_opt (field "tid" e) <> None);
      let ts =
        match Json.to_float_opt (field "ts" e) with
        | Some ts -> ts
        | None -> Alcotest.fail "ts not a number"
      in
      Alcotest.(check bool) "ts non-negative" true (ts >= 0.0);
      if ph = "X" then begin
        (match Json.to_float_opt (field "dur" e) with
        | Some d -> Alcotest.(check bool) "dur non-negative" true (d >= 0.0)
        | None -> Alcotest.fail "complete event without dur");
        Alcotest.(check bool) "complete events monotone" true (ts >= !last_x);
        last_x := ts
      end)
    events;
  (* Metadata names every tid that carries a complete event. *)
  let meta_tids =
    List.filter_map
      (fun e ->
        if Json.to_str_opt (field "ph" e) = Some "M" then
          Json.to_int_opt (field "tid" e)
        else None)
      events
  in
  List.iter
    (fun e ->
      if Json.to_str_opt (field "ph" e) = Some "X" then
        match Json.to_int_opt (field "tid" e) with
        | Some tid ->
          Alcotest.(check bool) "tid named by metadata" true
            (List.mem tid meta_tids)
        | None -> ())
    events

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\" line\nwith\ttabs and \\slashes");
        ("i", Json.Int (-42));
        ("f", Json.Float 3.25);
        ("tiny", Json.Float 1.5e-9);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ( "nested",
          Json.List
            [ Json.Obj [ ("k", Json.List [ Json.Int 1; Json.Float 0.5 ]) ];
              Json.List []; Json.Obj [] ] );
      ]
  in
  Alcotest.(check bool) "parse inverts to_string" true
    (Json.parse (Json.to_string doc) = doc);
  (* Whole-number floats re-parse as ints (the emitter prints them
     without a decimal point) — the numeric value survives. *)
  (match Json.parse (Json.to_string (Json.Float 7.0)) with
  | Json.Int 7 | Json.Float 7.0 -> ()
  | _ -> Alcotest.fail "whole-number float did not survive");
  List.iter
    (fun bad ->
      match Json.parse bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed input %S" bad)
    [ "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "1 2"; "" ]

(* ------------------------------------------------------------------ *)
(* Registry snapshot determinism (satellite)                           *)
(* ------------------------------------------------------------------ *)

let test_registry_snapshot_deterministic () =
  (* Insert in shuffled order; snapshots must come out name-sorted,
     duplicate-free, and identical call to call. *)
  let names = [ "zz"; "aa"; "mm"; "bb"; "yy" ] in
  List.iteri
    (fun i n -> Registry.incr ~by:i ("test.prof.det." ^ n))
    names;
  let s1 = Registry.snapshot () in
  let s2 = Registry.snapshot () in
  Alcotest.(check bool) "snapshots identical" true (s1 = s2);
  let keys = List.map fst s1 in
  Alcotest.(check bool) "name-sorted" true
    (List.sort String.compare keys = keys);
  Alcotest.(check bool) "duplicate-free" true
    (List.sort_uniq String.compare keys = List.sort String.compare keys);
  (* Rendered forms are stable too (the JSON/table view is a pure
     function of the snapshot). *)
  Alcotest.(check bool) "to_json stable" true
    (Json.to_string (Registry.to_json ()) = Json.to_string (Registry.to_json ()));
  List.iter
    (fun n -> Registry.unregister ("test.prof.det." ^ n))
    names

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "prof.attribution",
      [
        Alcotest.test_case "gemm: per-op identical" `Quick test_per_op_gemm;
        Alcotest.test_case "attention: per-op identical" `Quick test_per_op_attention;
        Alcotest.test_case "persistent: per-op identical" `Quick test_per_op_persistent;
        Alcotest.test_case "coop: per-op identical" `Quick test_per_op_coop;
      ]
      @ qsuite [ prop_conservation ] );
    ( "prof.critical-path",
      [
        Alcotest.test_case "gemm path crosses an aref edge" `Quick
          test_critical_path_aref;
        Alcotest.test_case "engines agree on the path" `Quick
          test_critical_path_engines_agree;
        Alcotest.test_case "synthetic two-WG ping" `Quick
          test_critical_path_synthetic;
      ] );
    ( "prof.timeline",
      [
        Alcotest.test_case "channel + op lanes" `Quick test_channel_intervals;
        Alcotest.test_case "ring event history" `Quick test_ring_timeline;
      ] );
    ( "prof.trace",
      [
        Alcotest.test_case "perfetto shape from a real run" `Quick
          test_trace_shape;
        Alcotest.test_case "json parser round-trip" `Quick test_json_roundtrip;
      ] );
    ( "prof.registry",
      [
        Alcotest.test_case "snapshot deterministic" `Quick
          test_registry_snapshot_deterministic;
      ] );
  ]
