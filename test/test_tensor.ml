(* Tests for the numerics substrate: dtype metadata, FP16/FP8 codecs,
   dense tensors, and reference kernels. *)

open Tawa_tensor

let check_float = Alcotest.(check (float 1e-12))

(* ------------------------------------------------------------------ *)
(* Dtype                                                              *)
(* ------------------------------------------------------------------ *)

let test_dtype_sizes () =
  Alcotest.(check int) "f32 bytes" 4 (Dtype.size_bytes F32);
  Alcotest.(check int) "f16 bytes" 2 (Dtype.size_bytes F16);
  Alcotest.(check int) "f8 bytes" 1 (Dtype.size_bytes F8E4M3);
  Alcotest.(check int) "f16 bits" 16 (Dtype.size_bits F16)

let test_dtype_strings () =
  List.iter
    (fun d ->
      match Dtype.of_string (Dtype.to_string d) with
      | Some d' -> Alcotest.(check bool) "roundtrip" true (Dtype.equal d d')
      | None -> Alcotest.fail "of_string failed")
    [ Dtype.F32; F16; F8E4M3; I32; I1 ];
  Alcotest.(check bool) "unknown" true (Dtype.of_string "f64" = None)

let test_dtype_classes () =
  Alcotest.(check bool) "f16 float" true (Dtype.is_float F16);
  Alcotest.(check bool) "i32 int" true (Dtype.is_int I32);
  Alcotest.(check bool) "i32 not float" false (Dtype.is_float I32)

(* ------------------------------------------------------------------ *)
(* FP16                                                               *)
(* ------------------------------------------------------------------ *)

let test_fp16_known_values () =
  let cases =
    [ (0.0, 0x0000); (1.0, 0x3c00); (-1.0, 0xbc00); (2.0, 0x4000);
      (0.5, 0x3800); (65504.0, 0x7bff); (Float.infinity, 0x7c00);
      (Float.neg_infinity, 0xfc00); (2. ** -24., 0x0001);
      (2. ** -14., 0x0400); (1.5, 0x3e00) ]
  in
  List.iter
    (fun (f, bits) ->
      Alcotest.(check int) (Printf.sprintf "encode %g" f) bits (Fp16.of_float f))
    cases;
  List.iter
    (fun (f, bits) -> check_float (Printf.sprintf "decode %#x" bits) f (Fp16.to_float bits))
    cases

let test_fp16_overflow () =
  Alcotest.(check int) "overflow -> inf" 0x7c00 (Fp16.of_float 1e6);
  Alcotest.(check int) "neg overflow" 0xfc00 (Fp16.of_float (-1e6));
  (* 65520 is the rounding boundary: values >= 65520 round to inf. *)
  Alcotest.(check int) "65519 -> max" 0x7bff (Fp16.of_float 65519.0);
  Alcotest.(check int) "65520 -> inf" 0x7c00 (Fp16.of_float 65520.0)

let test_fp16_underflow () =
  Alcotest.(check int) "tiny -> 0" 0x0000 (Fp16.of_float 1e-9);
  Alcotest.(check int) "neg tiny -> -0" 0x8000 (Fp16.of_float (-1e-9));
  (* Half of the smallest subnormal rounds to zero (ties to even). *)
  Alcotest.(check int) "half-ulp tie" 0x0000 (Fp16.of_float (2. ** -25.));
  Alcotest.(check int) "just above tie" 0x0001 (Fp16.of_float (2. ** -25. *. 1.1))

let test_fp16_nan () =
  Alcotest.(check bool) "nan encodes to nan" true (Fp16.is_nan (Fp16.of_float Float.nan));
  Alcotest.(check bool) "decode nan" true (Float.is_nan (Fp16.to_float 0x7e00));
  Alcotest.(check bool) "inf detect" true (Fp16.is_inf 0x7c00)

let test_fp16_round_to_even () =
  (* 1 + 2^-11 is exactly between 1.0 and 1+2^-10: ties to even -> 1.0. *)
  check_float "tie down" 1.0 (Fp16.round (1.0 +. (2. ** -11.)));
  (* (1+2^-10) + 2^-11 ties up to 1+2^-9. *)
  check_float "tie up" (1.0 +. (2. ** -9.))
    (Fp16.round (1.0 +. (2. ** -10.) +. (2. ** -11.)))

let test_fp16_exhaustive_roundtrip () =
  (* Every finite half value must decode/encode to itself. *)
  for bits = 0 to 0xffff do
    if not (Fp16.is_nan bits) then begin
      let f = Fp16.to_float bits in
      let bits' = Fp16.of_float f in
      if bits' <> bits then
        Alcotest.failf "fp16 roundtrip: %#x -> %g -> %#x" bits f bits'
    end
  done

let prop_fp16_idempotent =
  QCheck.Test.make ~name:"fp16 round idempotent" ~count:2000
    QCheck.(float_range (-70000.0) 70000.0)
    (fun f -> Float.equal (Fp16.round (Fp16.round f)) (Fp16.round f))

let prop_fp16_monotone =
  QCheck.Test.make ~name:"fp16 round monotone" ~count:2000
    QCheck.(pair (float_range (-1000.0) 1000.0) (float_range (-1000.0) 1000.0))
    (fun (a, b) ->
      let a, b = if a <= b then (a, b) else (b, a) in
      Fp16.round a <= Fp16.round b)

let prop_fp16_error_bound =
  QCheck.Test.make ~name:"fp16 relative error <= 2^-11" ~count:2000
    QCheck.(float_range 1e-3 60000.0)
    (fun f -> Float.abs (Fp16.round f -. f) <= Float.abs f *. (2. ** -11.) +. 1e-30)

(* ------------------------------------------------------------------ *)
(* FP8 E4M3                                                           *)
(* ------------------------------------------------------------------ *)

let test_fp8_known_values () =
  let cases =
    [ (0.0, 0x00); (1.0, 0x38); (-1.0, 0xb8); (2.0, 0x40); (448.0, 0x7e);
      (0.5, 0x30); (2. ** -9., 0x01); (2. ** -6., 0x08); (1.5, 0x3c) ]
  in
  List.iter
    (fun (f, bits) ->
      Alcotest.(check int) (Printf.sprintf "encode %g" f) bits (Fp8.of_float f))
    cases

let test_fp8_saturation () =
  Alcotest.(check int) "satfinite" 0x7e (Fp8.of_float 1e9);
  Alcotest.(check int) "satfinite inf" 0x7e (Fp8.of_float Float.infinity);
  Alcotest.(check int) "neg satfinite" 0xfe (Fp8.of_float Float.neg_infinity);
  check_float "448 stays" 448.0 (Fp8.round 448.0)

let test_fp8_nan () =
  Alcotest.(check int) "nan bits" 0x7f (Fp8.of_float Float.nan);
  Alcotest.(check bool) "decode nan" true (Float.is_nan (Fp8.to_float 0x7f));
  Alcotest.(check bool) "decode nan neg" true (Float.is_nan (Fp8.to_float 0xff))

let test_fp8_exhaustive_roundtrip () =
  for bits = 0 to 0xff do
    if not (Fp8.is_nan bits) then begin
      let f = Fp8.to_float bits in
      let bits' = Fp8.of_float f in
      (* +0 and -0 may alias; compare decoded values. *)
      if not (Float.equal (Fp8.to_float bits') f) then
        Alcotest.failf "fp8 roundtrip: %#x -> %g -> %#x" bits f bits'
    end
  done

let prop_fp8_idempotent =
  QCheck.Test.make ~name:"fp8 round idempotent" ~count:2000
    QCheck.(float_range (-500.0) 500.0)
    (fun f -> Float.equal (Fp8.round (Fp8.round f)) (Fp8.round f))

let prop_fp8_nearest =
  (* The chosen code is at least as close as every other code. *)
  QCheck.Test.make ~name:"fp8 encodes to nearest" ~count:500
    QCheck.(float_range (-450.0) 450.0)
    (fun f ->
      let e = Fp8.round f in
      let d = Float.abs (e -. f) in
      let ok = ref true in
      for b = 0 to 0xff do
        if not (Fp8.is_nan b) then begin
          let v = Fp8.to_float b in
          if Float.abs (v -. f) < d -. 1e-12 then ok := false
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Tensor                                                             *)
(* ------------------------------------------------------------------ *)

let test_tensor_create_get_set () =
  let t = Tensor.create [| 2; 3 |] in
  Alcotest.(check int) "numel" 6 (Tensor.numel t);
  Tensor.set t [| 1; 2 |] 42.0;
  check_float "get back" 42.0 (Tensor.get t [| 1; 2 |]);
  check_float "other zero" 0.0 (Tensor.get t [| 0; 0 |])

let test_tensor_oob () =
  let t = Tensor.create [| 2; 3 |] in
  Alcotest.check_raises "oob"
    (Invalid_argument
       "Tensor.linear_index: index 3 out of bounds for dim 1 (size 3)")
    (fun () -> ignore (Tensor.get t [| 0; 3 |]))

let test_tensor_quantization () =
  let t = Tensor.create ~dtype:Dtype.F16 [| 1 |] in
  Tensor.set t [| 0 |] (1.0 +. (2. ** -12.));
  check_float "quantized to f16" 1.0 (Tensor.get t [| 0 |]);
  let t8 = Tensor.create ~dtype:Dtype.F8E4M3 [| 1 |] in
  Tensor.set t8 [| 0 |] 3.1;
  check_float "quantized to f8" 3.0 (Tensor.get t8 [| 0 |])

let test_tensor_init_iteri () =
  let t = Tensor.init [| 3; 4 |] (fun idx -> Float.of_int ((idx.(0) * 10) + idx.(1))) in
  check_float "init value" 23.0 (Tensor.get t [| 2; 3 |]);
  let count = ref 0 in
  Tensor.iteri
    (fun idx v ->
      incr count;
      check_float "iteri consistent" (Float.of_int ((idx.(0) * 10) + idx.(1))) v)
    t;
  Alcotest.(check int) "iteri count" 12 !count

let test_tensor_slice_blit () =
  let src = Tensor.init [| 4; 4 |] (fun i -> Float.of_int ((i.(0) * 4) + i.(1))) in
  let tile = Tensor.slice2 src ~r0:1 ~c0:2 ~rows:2 ~cols:2 in
  check_float "slice [0,0]" 6.0 (Tensor.get2 tile 0 0);
  check_float "slice [1,1]" 11.0 (Tensor.get2 tile 1 1);
  (* Out-of-bounds slice reads zero. *)
  let edge = Tensor.slice2 src ~r0:3 ~c0:3 ~rows:2 ~cols:2 in
  check_float "in-bounds corner" 15.0 (Tensor.get2 edge 0 0);
  check_float "oob fill" 0.0 (Tensor.get2 edge 1 1);
  let dst = Tensor.create [| 4; 4 |] in
  Tensor.blit2 ~dst ~r0:2 ~c0:2 tile;
  check_float "blit" 6.0 (Tensor.get2 dst 2 2);
  (* Clipping blit must not raise. *)
  Tensor.blit2 ~dst ~r0:3 ~c0:3 tile;
  check_float "clipped blit" 6.0 (Tensor.get2 dst 3 3)

let test_tensor_transpose () =
  let t = Tensor.init [| 2; 3 |] (fun i -> Float.of_int ((i.(0) * 3) + i.(1))) in
  let tt = Tensor.transpose2 t in
  Alcotest.(check (array int)) "shape" [| 3; 2 |] (Tensor.shape tt);
  check_float "transposed" (Tensor.get2 t 0 2) (Tensor.get2 tt 2 0)

let test_tensor_cast () =
  let t = Tensor.init [| 2 |] (fun i -> if i.(0) = 0 then 1.0001 else 300.0) in
  let h = Tensor.cast Dtype.F8E4M3 t in
  check_float "cast quantizes" 1.0 (Tensor.get h [| 0 |]);
  (* E4M3 neighbours of 300 are 288 and 320; 288 is nearer. *)
  check_float "cast 300->288" 288.0 (Tensor.get h [| 1 |])

let test_tensor_random_deterministic () =
  let a = Tensor.random ~seed:7 [| 8; 8 |] in
  let b = Tensor.random ~seed:7 [| 8; 8 |] in
  Alcotest.(check bool) "same seed same data" true (Tensor.equal a b);
  let c = Tensor.random ~seed:8 [| 8; 8 |] in
  Alcotest.(check bool) "different seed" false (Tensor.equal a c)

let prop_tensor_map2_add_comm =
  QCheck.Test.make ~name:"map2 (+) commutative" ~count:200
    QCheck.(pair small_int small_int)
    (fun (sa, sb) ->
      let a = Tensor.random ~seed:(sa + 1) [| 4; 4 |] in
      let b = Tensor.random ~seed:(sb + 1000) [| 4; 4 |] in
      Tensor.equal (Tensor.map2 ( +. ) a b) (Tensor.map2 ( +. ) b a))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involution" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (r, c) ->
      let t = Tensor.random ~seed:(r + (c * 100)) [| r; c |] in
      Tensor.equal t (Tensor.transpose2 (Tensor.transpose2 t)))

(* ------------------------------------------------------------------ *)
(* Reference kernels                                                  *)
(* ------------------------------------------------------------------ *)

let test_gemm_identity () =
  let n = 8 in
  let a = Tensor.random ~dtype:Dtype.F16 ~seed:1 [| n; n |] in
  let id = Tensor.init ~dtype:Dtype.F16 [| n; n |] (fun i -> if i.(0) = i.(1) then 1.0 else 0.0) in
  let c = Reference.gemm a id in
  Alcotest.(check bool) "A * I = A" true (Tensor.approx_equal ~tol:1e-6 a c)

let test_gemm_known () =
  let a = Tensor.init [| 2; 2 |] (fun i -> Float.of_int ((i.(0) * 2) + i.(1) + 1)) in
  (* [[1;2];[3;4]] * [[1;2];[3;4]] = [[7;10];[15;22]] *)
  let c = Reference.gemm ~out_dtype:Dtype.F32 a a in
  check_float "c00" 7.0 (Tensor.get2 c 0 0);
  check_float "c01" 10.0 (Tensor.get2 c 0 1);
  check_float "c10" 15.0 (Tensor.get2 c 1 0);
  check_float "c11" 22.0 (Tensor.get2 c 1 1)

let test_gemm_rect () =
  let a = Tensor.random ~seed:2 [| 3; 5 |] and b = Tensor.random ~seed:3 [| 5; 7 |] in
  let c = Reference.gemm ~out_dtype:Dtype.F32 a b in
  Alcotest.(check (array int)) "shape" [| 3; 7 |] (Tensor.shape c);
  (* Spot-check one entry. *)
  let expect = ref 0.0 in
  for p = 0 to 4 do
    expect := !expect +. (Tensor.get2 a 2 p *. Tensor.get2 b p 6)
  done;
  Alcotest.(check (float 1e-6)) "entry" !expect (Tensor.get2 c 2 6)

let prop_gemm_linear =
  (* (alpha A) B = alpha (A B) in f32. *)
  QCheck.Test.make ~name:"gemm scalar linearity" ~count:50
    QCheck.(pair (int_range 1 6) (float_range (-2.0) 2.0))
    (fun (n, alpha) ->
      let a = Tensor.random ~seed:n [| n; n |] in
      let b = Tensor.random ~seed:(n + 77) [| n; n |] in
      let sa = Tensor.map (fun x -> alpha *. x) a in
      let lhs = Reference.gemm ~out_dtype:Dtype.F32 sa b in
      let rhs =
        Tensor.map (fun x -> alpha *. x) (Reference.gemm ~out_dtype:Dtype.F32 a b)
      in
      Tensor.max_abs_diff lhs rhs < 1e-4)

let test_softmax_rows_sum_to_one () =
  let x = Tensor.random ~seed:11 ~lo:(-5.0) ~hi:5.0 [| 6; 9 |] in
  let s = Reference.softmax x in
  for i = 0 to 5 do
    let sum = ref 0.0 in
    for j = 0 to 8 do
      sum := !sum +. Tensor.get2 s i j
    done;
    (* Entries are stored at single precision, so allow f32-level error. *)
    Alcotest.(check (float 1e-6)) "row sums to 1" 1.0 !sum
  done

let test_softmax_stability () =
  (* Large logits must not overflow. *)
  let x = Tensor.init [| 1; 3 |] (fun i -> 1e4 +. Float.of_int i.(1)) in
  let s = Reference.softmax x in
  Alcotest.(check bool) "finite" true (Float.is_finite (Tensor.get2 s 0 0))

let test_attention_online_matches_direct () =
  List.iter
    (fun causal ->
      let l = 24 and d = 8 in
      let q = Tensor.random ~dtype:Dtype.F16 ~seed:21 [| l; d |] in
      let k = Tensor.random ~dtype:Dtype.F16 ~seed:22 [| l; d |] in
      let v = Tensor.random ~dtype:Dtype.F16 ~seed:23 [| l; d |] in
      let direct = Reference.attention ~causal ~out_dtype:Dtype.F32 ~q ~k ~v () in
      let online =
        Reference.attention_online ~causal ~out_dtype:Dtype.F32 ~block:7 ~q ~k ~v ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "online = direct (causal=%b)" causal)
        true
        (Tensor.max_abs_diff direct online < 1e-4))
    [ false; true ]

let test_attention_uniform_values () =
  (* With V constant, attention output is that constant regardless of scores. *)
  let l = 10 and d = 4 in
  let q = Tensor.random ~seed:31 [| l; d |] in
  let k = Tensor.random ~seed:32 [| l; d |] in
  let v = Tensor.init [| l; d |] (fun _ -> 0.75) in
  let o = Reference.attention ~out_dtype:Dtype.F32 ~q ~k ~v () in
  Alcotest.(check bool) "constant out" true (Tensor.max_abs_diff o v < 1e-9)

let test_causal_first_row () =
  (* Row 0 of causal attention attends only to position 0: output = V[0]. *)
  let l = 6 and d = 3 in
  let q = Tensor.random ~seed:41 [| l; d |] in
  let k = Tensor.random ~seed:42 [| l; d |] in
  let v = Tensor.random ~seed:43 [| l; d |] in
  let o = Reference.attention ~causal:true ~out_dtype:Dtype.F32 ~q ~k ~v () in
  for p = 0 to d - 1 do
    Alcotest.(check (float 1e-9)) "row0 = v0" (Tensor.get2 v 0 p) (Tensor.get2 o 0 p)
  done

let test_flop_counts () =
  Alcotest.(check (float 1.0)) "gemm flops" 2e9
    (Reference.gemm_flops ~m:1000 ~n:1000 ~k:1000);
  let f = Reference.attention_flops ~batch:2 ~heads:4 ~len:128 ~head_dim:64 () in
  Alcotest.(check (float 1.0)) "mha flops" (4.0 *. 128. *. 128. *. 64. *. 8.) f;
  let fc = Reference.attention_flops ~causal:true ~batch:2 ~heads:4 ~len:128 ~head_dim:64 () in
  Alcotest.(check (float 1.0)) "causal halves" (f /. 2.0) fc

(* ------------------------------------------------------------------ *)
(* Bulk contiguous-slice kernels vs scalar get_flat/set_flat loops     *)
(* ------------------------------------------------------------------ *)

(* The vectorized span kernels (blit/axpy/store/reduce over contiguous
   payload slices) must be bit-identical to the per-element accessor
   loops they replaced, across dtypes and at deliberately non-aligned
   offsets. Spans live inside 1-D tensors of length 40 with offsets up
   to 9 and lengths up to 24, so every case exercises interior,
   unaligned windows. *)

let slice_dt = function 0 -> Dtype.F32 | 1 -> Dtype.F16 | _ -> Dtype.F8E4M3

(* ((src dtype, dst dtype), ((len, (soff, doff)), seed)) *)
let slice_args =
  QCheck.(
    pair
      (pair (int_range 0 2) (int_range 0 2))
      (pair (pair (int_range 0 24) (pair (int_range 0 9) (int_range 0 9))) small_int))

let slice_tensors ~sdt ~ddt ~seed =
  let src = Tensor.random ~dtype:sdt ~seed:(seed + 1) ~lo:(-4.0) ~hi:4.0 [| 40 |] in
  let dst = Tensor.random ~dtype:ddt ~seed:(seed + 7777) ~lo:(-4.0) ~hi:4.0 [| 40 |] in
  (src, dst)

let prop_blit_slice_matches_scalar =
  QCheck.Test.make ~name:"blit_slice = scalar set_flat loop" ~count:400 slice_args
    (fun ((si, di), ((len, (soff, doff)), seed)) ->
      let src, dst = slice_tensors ~sdt:(slice_dt si) ~ddt:(slice_dt di) ~seed in
      let expect = Tensor.cast (Tensor.dtype dst) dst in
      for i = 0 to len - 1 do
        Tensor.set_flat expect (doff + i) (Tensor.get_flat src (soff + i))
      done;
      Tensor.blit_slice ~src ~soff ~dst ~doff ~len;
      Tensor.equal dst expect)

let prop_axpy_slice_matches_scalar =
  QCheck.Test.make ~name:"axpy_slice = scalar set_flat loop" ~count:400
    QCheck.(pair slice_args (float_range (-2.0) 2.0))
    (fun (((si, di), ((len, (soff, doff)), seed)), alpha) ->
      let src, dst = slice_tensors ~sdt:(slice_dt si) ~ddt:(slice_dt di) ~seed in
      let expect = Tensor.cast (Tensor.dtype dst) dst in
      for i = 0 to len - 1 do
        Tensor.set_flat expect (doff + i)
          (Tensor.get_flat expect (doff + i)
          +. (alpha *. Tensor.get_flat src (soff + i)))
      done;
      Tensor.axpy_slice ~alpha ~src ~soff ~dst ~doff ~len;
      Tensor.equal dst expect)

let prop_axpy_raw_matches_scalar =
  QCheck.Test.make ~name:"axpy_raw = scalar float loop" ~count:400
    QCheck.(pair slice_args (float_range (-2.0) 2.0))
    (fun (((_, _), ((len, (soff, doff)), seed)), alpha) ->
      let src, dst = slice_tensors ~sdt:Dtype.F32 ~ddt:Dtype.F32 ~seed in
      let expect = Array.copy dst.Tensor.data in
      for i = 0 to len - 1 do
        expect.(doff + i) <-
          expect.(doff + i) +. (alpha *. src.Tensor.data.(soff + i))
      done;
      Tensor.axpy_raw ~alpha src.Tensor.data ~soff dst.Tensor.data ~doff ~len;
      dst.Tensor.data = expect)

let prop_store_slice_matches_scalar =
  QCheck.Test.make ~name:"store_slice = quantizing set_flat loop" ~count:400
    slice_args
    (fun ((_, di), ((len, (soff, doff)), seed)) ->
      (* Raw (unquantized) f32 source span into a quantizing payload. *)
      let raw = Tensor.random ~dtype:Dtype.F32 ~seed:(seed + 3) ~lo:(-4.0) ~hi:4.0 [| 40 |] in
      let _, dst = slice_tensors ~sdt:Dtype.F32 ~ddt:(slice_dt di) ~seed in
      let expect = Tensor.cast (Tensor.dtype dst) dst in
      for i = 0 to len - 1 do
        Tensor.set_flat expect (doff + i) raw.Tensor.data.(soff + i)
      done;
      Tensor.store_slice ~dst ~doff raw.Tensor.data ~soff ~len;
      Tensor.equal dst expect)

let prop_reduce_slice_matches_scalar =
  QCheck.Test.make ~name:"reduce_slice = quantizing fold (sum, max)" ~count:400
    slice_args
    (fun ((si, _), ((len, (soff, _)), seed)) ->
      let dt = slice_dt si in
      let t, _ = slice_tensors ~sdt:dt ~ddt:dt ~seed in
      List.for_all
        (fun f ->
          let init = Tensor.quantize dt 0.0 in
          let expect = ref init in
          for i = 0 to len - 1 do
            expect := Tensor.quantize dt (f !expect (Tensor.get_flat t (soff + i)))
          done;
          Tensor.reduce_slice f ~init t ~off:soff ~len = !expect)
        [ ( +. ); Float.max ])

let prop_cast_matches_scalar =
  QCheck.Test.make ~name:"cast = per-element quantize" ~count:200
    QCheck.(pair (pair (int_range 0 2) (int_range 0 2)) small_int)
    (fun ((si, di), seed) ->
      let t = Tensor.random ~dtype:(slice_dt si) ~seed:(seed + 5) ~lo:(-4.0) ~hi:4.0 [| 7; 5 |] in
      let out = Tensor.cast (slice_dt di) t in
      let expect = Tensor.create ~dtype:(slice_dt di) [| 7; 5 |] in
      for i = 0 to Tensor.numel t - 1 do
        Tensor.set_flat expect i (Tensor.get_flat t i)
      done;
      Tensor.equal out expect)

let prop_gemm_bit_identical_to_textbook =
  (* Reference.gemm's k-outer row-axpy form performs, per output
     element, the identical p-ascending add sequence and single final
     quantize as the textbook i-j-p loop — bit-for-bit. *)
  QCheck.Test.make ~name:"gemm k-outer = textbook i-j-p, bit-identical" ~count:60
    QCheck.(pair (pair (int_range 1 9) (pair (int_range 1 9) (int_range 1 9))) small_int)
    (fun ((m, (n, k)), seed) ->
      let a = Tensor.random ~dtype:Dtype.F16 ~seed:(seed + 11) [| m; k |] in
      let b = Tensor.random ~dtype:Dtype.F16 ~seed:(seed + 13) [| k; n |] in
      let expect = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0.0 in
          for p = 0 to k - 1 do
            acc := !acc +. (Tensor.get2 a i p *. Tensor.get2 b p j)
          done;
          Tensor.set2 expect i j !acc
        done
      done;
      Tensor.equal (Reference.gemm a b) expect)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "tensor.dtype",
      [
        Alcotest.test_case "sizes" `Quick test_dtype_sizes;
        Alcotest.test_case "strings" `Quick test_dtype_strings;
        Alcotest.test_case "classes" `Quick test_dtype_classes;
      ] );
    ( "tensor.fp16",
      [
        Alcotest.test_case "known values" `Quick test_fp16_known_values;
        Alcotest.test_case "overflow" `Quick test_fp16_overflow;
        Alcotest.test_case "underflow" `Quick test_fp16_underflow;
        Alcotest.test_case "nan" `Quick test_fp16_nan;
        Alcotest.test_case "round to even" `Quick test_fp16_round_to_even;
        Alcotest.test_case "exhaustive roundtrip" `Quick test_fp16_exhaustive_roundtrip;
      ] );
    qsuite "tensor.fp16.props" [ prop_fp16_idempotent; prop_fp16_monotone; prop_fp16_error_bound ];
    ( "tensor.fp8",
      [
        Alcotest.test_case "known values" `Quick test_fp8_known_values;
        Alcotest.test_case "saturation" `Quick test_fp8_saturation;
        Alcotest.test_case "nan" `Quick test_fp8_nan;
        Alcotest.test_case "exhaustive roundtrip" `Quick test_fp8_exhaustive_roundtrip;
      ] );
    qsuite "tensor.fp8.props" [ prop_fp8_idempotent; prop_fp8_nearest ];
    ( "tensor.core",
      [
        Alcotest.test_case "create/get/set" `Quick test_tensor_create_get_set;
        Alcotest.test_case "out of bounds" `Quick test_tensor_oob;
        Alcotest.test_case "quantization on set" `Quick test_tensor_quantization;
        Alcotest.test_case "init/iteri" `Quick test_tensor_init_iteri;
        Alcotest.test_case "slice/blit" `Quick test_tensor_slice_blit;
        Alcotest.test_case "transpose" `Quick test_tensor_transpose;
        Alcotest.test_case "cast" `Quick test_tensor_cast;
        Alcotest.test_case "random deterministic" `Quick test_tensor_random_deterministic;
      ] );
    qsuite "tensor.core.props" [ prop_tensor_map2_add_comm; prop_transpose_involution ];
    ( "tensor.reference",
      [
        Alcotest.test_case "gemm identity" `Quick test_gemm_identity;
        Alcotest.test_case "gemm known" `Quick test_gemm_known;
        Alcotest.test_case "gemm rectangular" `Quick test_gemm_rect;
        Alcotest.test_case "softmax rows" `Quick test_softmax_rows_sum_to_one;
        Alcotest.test_case "softmax stability" `Quick test_softmax_stability;
        Alcotest.test_case "attention online=direct" `Quick test_attention_online_matches_direct;
        Alcotest.test_case "attention uniform V" `Quick test_attention_uniform_values;
        Alcotest.test_case "causal first row" `Quick test_causal_first_row;
        Alcotest.test_case "flop counts" `Quick test_flop_counts;
      ] );
    qsuite "tensor.reference.props" [ prop_gemm_linear ];
    qsuite "tensor.slices.props"
      [ prop_blit_slice_matches_scalar; prop_axpy_slice_matches_scalar;
        prop_axpy_raw_matches_scalar; prop_store_slice_matches_scalar;
        prop_reduce_slice_matches_scalar; prop_cast_matches_scalar;
        prop_gemm_bit_identical_to_textbook ];
  ]
