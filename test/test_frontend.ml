(* Tests for the textual DSL: lexer, parser, elaborator, and
   end-to-end equivalence of DSL-written kernels with the EDSL
   references — including running a DSL kernel through the whole Tawa
   pipeline and the simulator. *)

open Tawa_tensor
open Tawa_ir
open Tawa_frontend

(* A complete GEMM in the surface syntax (the Fig. 2b program). *)
let gemm_src =
  {|
# C = A * B, one 16x16 tile per program
kernel matmul(a: ptr<f16>, b: ptr<f16>, c: ptr<f16>, M: i32, N: i32, K: i32) {
  pid_m = program_id(0);
  pid_n = program_id(1);
  da = descriptor(a, [M, K], [K, 1]);
  db = descriptor(b, [K, N], [N, 1]);
  dc = descriptor(c, [M, N], [N, 1]);
  offs_m = pid_m * 16;
  offs_n = pid_n * 16;
  acc = zeros([16, 16], f32);
  for k in 0 .. K step 8 with (acc) {
    at = load(da, [offs_m, k], [16, 8]);
    bt = load(db, [k, offs_n], [8, 16]);
    acc = dot(at, bt, acc);
  }
  store(dc, [offs_m, offs_n], cast(acc, f16));
}
|}

let attention_src =
  {|
kernel attention(q: ptr<f16>, k: ptr<f16>, v: ptr<f16>, o: ptr<f16>, L: i32) {
  dq = descriptor(q, [L, 8], [8, 1]);
  dk = descriptor(k, [L, 8], [8, 1]);
  dv = descriptor(v, [L, 8], [8, 1]);
  do_ = descriptor(o, [L, 8], [8, 1]);
  pid = program_id(0);
  offs_m = pid * 16;
  qt = load(dq, [offs_m, 0], [16, 8]);
  acc = zeros([16, 8], f32);
  m_i = full([16], 0.0 - 1000000000.0, f32);
  l_i = zeros([16], f32);
  for n in 0 .. L step 16 with (acc, m_i, l_i) {
    kt = load(dk, [n, 0], [16, 8]);
    s = dot(qt, trans(kt), zeros([16, 16], f32));
    s = s * 0.35355339059;            # 1/sqrt(8)
    m_new = max(m_i, reduce_max(s, 1));
    p = exp(s - broadcast(expand_dims(m_new, 1), [16, 16]));
    alpha = exp(m_i - m_new);
    l_i = alpha * l_i + reduce_sum(p, 1);
    acc = acc * broadcast(expand_dims(alpha, 1), [16, 8]);
    vt = load(dv, [n, 0], [16, 8]);
    acc = dot(cast(p, f16), vt, acc);
    m_i = m_new;
  }
  o_t = acc / broadcast(expand_dims(l_i, 1), [16, 8]);
  store(do_, [offs_m, 0], cast(o_t, f16));
}
|}

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "for k in 0 .. K step 8 { x = y * 2; } # c" in
  let names = List.map (fun (l : Lexer.lexeme) -> Lexer.token_name l.Lexer.tok) toks in
  Alcotest.(check (list string)) "token stream"
    [ "for"; "k"; "in"; "0"; ".."; "K"; "step"; "8"; "{"; "x"; "="; "y"; "*"; "2"; ";";
      "}"; "<eof>" ]
    names

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  bb" in
  match toks with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "a line" 1 a.Lexer.pos.Ast.line;
    Alcotest.(check int) "b line" 2 b.Lexer.pos.Ast.line;
    Alcotest.(check int) "b col" 3 b.Lexer.pos.Ast.col
  | _ -> Alcotest.fail "expected three lexemes"

let test_lexer_numbers () =
  let toks = Lexer.tokenize "1 2.5 1e3 0..8" in
  let names = List.map (fun (l : Lexer.lexeme) -> Lexer.token_name l.Lexer.tok) toks in
  (* 1e3 lexes as INT 1 IDENT e3 (no exponent without '.'), which the
     grammar does not use; 0..8 must split into INT DOTDOT INT. *)
  Alcotest.(check bool) "range split" true
    (List.mem ".." names && List.mem "0" names && List.mem "8" names);
  Alcotest.(check bool) "float" true (List.mem "2.5" names)

let test_lexer_rejects_garbage () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "a @ b");
       false
     with Lexer.Lex_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_gemm_structure () =
  match Parser.parse gemm_src with
  | [ k ] ->
    Alcotest.(check string) "name" "matmul" k.Ast.kname;
    Alcotest.(check int) "params" 6 (List.length k.Ast.kparams);
    Alcotest.(check bool) "first param is ptr" true
      (match (List.hd k.Ast.kparams).Ast.pty with Ast.Ty_ptr "f16" -> true | _ -> false);
    (* Body: 8 assigns, the for, the store. *)
    let kinds =
      List.map
        (fun (s : Ast.stmt) ->
          match s.Ast.sdesc with
          | Ast.Assign _ -> "assign"
          | Ast.Store _ -> "store"
          | Ast.For _ -> "for"
          | Ast.If _ -> "if")
        k.Ast.kbody
    in
    Alcotest.(check bool) "has for" true (List.mem "for" kinds);
    Alcotest.(check bool) "ends with store" true (List.nth kinds (List.length kinds - 1) = "store")
  | ks -> Alcotest.failf "expected one kernel, got %d" (List.length ks)

let test_parse_precedence () =
  let src = "kernel t(x: i32) { y = 1 + 2 * 3; z = (1 + 2) * 3; }" in
  match Parser.parse src with
  | [ k ] -> (
    match k.Ast.kbody with
    | [ { Ast.sdesc = Ast.Assign (_, e1); _ }; { Ast.sdesc = Ast.Assign (_, e2); _ } ] ->
      (match e1.Ast.desc with
      | Ast.Bin (Ast.Badd, _, { Ast.desc = Ast.Bin (Ast.Bmul, _, _); _ }) -> ()
      | _ -> Alcotest.fail "mul must bind tighter than add");
      (match e2.Ast.desc with
      | Ast.Bin (Ast.Bmul, { Ast.desc = Ast.Bin (Ast.Badd, _, _); _ }, _) -> ()
      | _ -> Alcotest.fail "parens must override precedence")
    | _ -> Alcotest.fail "expected two assigns")
  | _ -> Alcotest.fail "expected one kernel"

let test_parse_for_with_carried () =
  let src = "kernel t(n: i32) { a = 0; b = 0; for i in 0 .. n with (a, b) { a = a + i; b = b + a; } }" in
  match Parser.parse src with
  | [ k ] -> (
    match List.nth k.Ast.kbody 2 with
    | { Ast.sdesc = Ast.For { carried; step; _ }; _ } ->
      Alcotest.(check (list string)) "carried" [ "a"; "b" ] carried;
      Alcotest.(check bool) "default step" true (step = None)
    | _ -> Alcotest.fail "expected for")
  | _ -> Alcotest.fail "expected one kernel"

let test_parse_error_reports_position () =
  Alcotest.(check bool) "missing semi" true
    (try
       ignore (Parser.parse "kernel t(x: i32) { y = 1 }");
       false
     with Parser.Parse_error (_, pos) -> pos.Ast.line = 1)

let test_parse_multiple_kernels () =
  let src = "kernel a(x: i32) { y = x; } kernel b(x: i32) { y = x; }" in
  Alcotest.(check int) "two kernels" 2 (List.length (Parser.parse src))

(* ------------------------------------------------------------------ *)
(* Elaboration                                                        *)
(* ------------------------------------------------------------------ *)

let test_elab_gemm_verifies () =
  match Elaborate.compile_string gemm_src with
  | [ k ] ->
    Alcotest.(check string) "name" "matmul" k.Kernel.name;
    Alcotest.(check bool) "has ops" true (Kernel.count_ops k > 10)
  | _ -> Alcotest.fail "expected one kernel"

let test_elab_unbound_var () =
  Alcotest.(check bool) "unbound" true
    (try
       ignore (Elaborate.compile_string "kernel t(x: i32) { y = z + 1; }");
       false
     with Elaborate.Elab_error (msg, _) -> Astring.String.is_infix ~affix:"unbound" msg)

let test_elab_autosplat () =
  (* `s * 0.5` with s a tile must splat the scalar. *)
  let src =
    "kernel t(p: ptr<f16>, n: i32) { d = descriptor(p, [n, n], [n, 1]);\n\
     x = load(d, [0, 0], [4, 4]); y = x * 0.5; store(d, [0, 0], cast(y, f16)); }"
  in
  match Elaborate.compile_string src with
  | [ k ] ->
    let has_splat = ref false in
    Op.iter_region
      (fun op -> if op.Op.opcode = Op.Splat then has_splat := true)
      k.Kernel.body;
    Alcotest.(check bool) "splat inserted" true !has_splat
  | _ -> Alcotest.fail "expected one kernel"

let run_dsl_gemm kernel ~m ~n ~kk =
  let a = Tensor.random ~dtype:Dtype.F16 ~seed:1 [| m; kk |] in
  let b = Tensor.random ~dtype:Dtype.F16 ~seed:2 [| kk; n |] in
  let c = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  ignore
    (Interp.run_grid ~grid:(m / 16, n / 16, 1) kernel
       [ Interp.RTensor a; Interp.RTensor b; Interp.RTensor c; Interp.RInt m;
         Interp.RInt n; Interp.RInt kk ]);
  (c, Reference.gemm ~out_dtype:Dtype.F16 a b)

let test_dsl_gemm_matches_reference () =
  match Elaborate.compile_string gemm_src with
  | [ k ] ->
    let got, want = run_dsl_gemm k ~m:32 ~n:32 ~kk:24 in
    Alcotest.(check bool) "dsl gemm == reference" true (Tensor.max_rel_diff got want < 1e-3)
  | _ -> Alcotest.fail "expected one kernel"

let test_dsl_attention_matches_reference () =
  match Elaborate.compile_string attention_src with
  | [ kern ] ->
    let l = 32 and d = 8 in
    let q = Tensor.random ~dtype:Dtype.F16 ~seed:11 [| l; d |] in
    let kt = Tensor.random ~dtype:Dtype.F16 ~seed:12 [| l; d |] in
    let v = Tensor.random ~dtype:Dtype.F16 ~seed:13 [| l; d |] in
    let o = Tensor.create ~dtype:Dtype.F16 [| l; d |] in
    ignore
      (Interp.run_grid ~grid:(l / 16, 1, 1) kern
         [ Interp.RTensor q; Interp.RTensor kt; Interp.RTensor v; Interp.RTensor o;
           Interp.RInt l ]);
    let want = Reference.attention ~out_dtype:Dtype.F16 ~q ~k:kt ~v () in
    Alcotest.(check bool) "dsl attention == reference" true
      (Tensor.max_rel_diff o want < 2e-2)
  | _ -> Alcotest.fail "expected one kernel"

let test_dsl_kernel_through_full_pipeline () =
  (* DSL source -> Tawa warp specialization -> machine code -> simulator
     must still agree with the reference. *)
  match Elaborate.compile_string gemm_src with
  | [ k ] ->
    let compiled =
      Tawa_core.Flow.compile
        ~options:
          { Tawa_core.Flow.default_options with aref_depth = 2; mma_depth = 2; num_consumer_wgs = 1;
            persistent = false; use_coarse = false }
        k
    in
    Alcotest.(check bool) "warp specialized" true compiled.Tawa_core.Flow.warp_specialized;
    let m = 32 and n = 32 and kk = 24 in
    let a = Tensor.random ~dtype:Dtype.F16 ~seed:1 [| m; kk |] in
    let b = Tensor.random ~dtype:Dtype.F16 ~seed:2 [| kk; n |] in
    let c = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
    ignore
      (Tawa_gpusim.Launch.run_grid_functional ~cfg:Tawa_gpusim.Config.functional_test
         compiled.Tawa_core.Flow.program
         ~params:
           [ Tawa_gpusim.Sim.Rtensor a; Tawa_gpusim.Sim.Rtensor b;
             Tawa_gpusim.Sim.Rtensor c; Tawa_gpusim.Sim.Rint m; Tawa_gpusim.Sim.Rint n;
             Tawa_gpusim.Sim.Rint kk ]
         ~grid:(m / 16, n / 16, 1));
    let want = Reference.gemm ~out_dtype:Dtype.F16 a b in
    Alcotest.(check bool) "dsl -> ws -> sim == reference" true
      (Tensor.max_rel_diff c want < 1e-3)
  | _ -> Alcotest.fail "expected one kernel"

let test_if_statement_carried () =
  let src =
    "kernel t(n: i32) { x = 1; if n > 10 with (x) { x = x + 100; } else { x = x + 1; }\n\
     y = x * 2; }"
  in
  match Elaborate.compile_string src with
  | [ k ] ->
    let has_if = ref false in
    Op.iter_region (fun op -> if op.Op.opcode = Op.If then has_if := true) k.Kernel.body;
    Alcotest.(check bool) "if emitted" true !has_if
  | _ -> Alcotest.fail "expected one kernel"

let prop_roundtrip_arith =
  (* Random arithmetic expressions over scalars elaborate and verify. *)
  QCheck.Test.make ~name:"random scalar expressions elaborate" ~count:100
    QCheck.(pair (int_range 1 100) (int_range 1 100))
    (fun (a, c) ->
      let src =
        Printf.sprintf "kernel t(x: i32) { y = (x + %d) * %d - x / 2 %% 7; z = y < x; }" a c
      in
      match Elaborate.compile_string src with
      | [ _ ] -> true
      | _ -> false)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "frontend.lexer",
      [
        Alcotest.test_case "tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "positions" `Quick test_lexer_positions;
        Alcotest.test_case "numbers and ranges" `Quick test_lexer_numbers;
        Alcotest.test_case "rejects garbage" `Quick test_lexer_rejects_garbage;
      ] );
    ( "frontend.parser",
      [
        Alcotest.test_case "gemm structure" `Quick test_parse_gemm_structure;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "for with carried" `Quick test_parse_for_with_carried;
        Alcotest.test_case "error position" `Quick test_parse_error_reports_position;
        Alcotest.test_case "multiple kernels" `Quick test_parse_multiple_kernels;
      ] );
    ( "frontend.elaborate",
      [
        Alcotest.test_case "gemm verifies" `Quick test_elab_gemm_verifies;
        Alcotest.test_case "unbound variable" `Quick test_elab_unbound_var;
        Alcotest.test_case "auto-splat" `Quick test_elab_autosplat;
        Alcotest.test_case "if with carried" `Quick test_if_statement_carried;
        Alcotest.test_case "gemm == reference" `Quick test_dsl_gemm_matches_reference;
        Alcotest.test_case "attention == reference" `Quick test_dsl_attention_matches_reference;
        Alcotest.test_case "dsl through full pipeline" `Quick test_dsl_kernel_through_full_pipeline;
      ] );
    qsuite "frontend.props" [ prop_roundtrip_arith ];
  ]
