(* Tests for the task-graph execution layer: read/write inference,
   dependency planning (with a QCheck scheduler-safety property), the
   graph-vs-serial differential on all three demo graphs (outputs,
   cycles, stall profiles — bit-identical), replay idempotence (N
   replays, one decode), and tunestore auto-configuration at
   instantiate. *)

open Tawa_tensor
open Tawa_frontend
open Tawa_gpusim
module Flow = Tawa_core.Flow
module Autotune = Tawa_core.Autotune
module Workloads = Tawa_core.Workloads
module Tunestore = Tawa_machine.Tunestore
module Graph = Tawa_graph.Graph
module Gallery = Tawa_graph.Gallery

(* Exact outcome equality, as in test_engine.ml: cycles, instructions,
   stats, and the per-WG / per-channel stall profiles, bit for bit. *)
let profiles_equal (a : Sim.profile) (b : Sim.profile) =
  a.Sim.wall = b.Sim.wall
  && a.Sim.wg_profs = b.Sim.wg_profs
  && a.Sim.chan_profs = b.Sim.chan_profs

let outcomes_equal (a : Sim.outcome) (b : Sim.outcome) =
  a.Sim.cycles = b.Sim.cycles
  && a.Sim.instructions = b.Sim.instructions
  && a.Sim.stats = b.Sim.stats
  && profiles_equal a.Sim.profile b.Sim.profile

(* ------------------------------------------------------------------ *)
(* Read/write inference                                                *)
(* ------------------------------------------------------------------ *)

let test_param_access_gemm () =
  let access = Graph.param_access (Kernels.gemm ()) in
  Alcotest.(check (list int)) "gemm reads a,b" [ 0; 1 ] access.Graph.reads;
  Alcotest.(check (list int)) "gemm writes c" [ 2 ] access.Graph.writes

let test_param_access_attention () =
  let access = Graph.param_access (Kernels.attention ()) in
  Alcotest.(check (list int)) "attention reads q,k,v" [ 0; 1; 2 ] access.Graph.reads;
  Alcotest.(check (list int)) "attention writes o" [ 3 ] access.Graph.writes

let test_param_access_conservative () =
  (* A pointer parameter that never flows through a trackable
     descriptor must be classified read+write. *)
  let k =
    Tawa_ir.Builder.kernel "opaque"
      [ ("used", Tawa_ir.Types.ptr Dtype.F16);
        ("opaque", Tawa_ir.Types.ptr Dtype.F16);
        ("M", Tawa_ir.Types.i32) ]
      (fun b ps ->
        let used, _opaque, m =
          match ps with [ u; o; m ] -> (u, o, m) | _ -> assert false
        in
        let c1 = Tawa_ir.Builder.const_i b 1 in
        let d =
          Tawa_ir.Builder.make_tensor_desc b used ~sizes:[ m; m ]
            ~strides:[ m; c1 ] ~dtype:Dtype.F16
        in
        let z = Tawa_ir.Builder.const_i b 0 in
        let t = Tawa_ir.Builder.tma_load b d ~offsets:[ z; z ] ~shape:[ 16; 16 ] in
        Tawa_ir.Builder.tma_store b d ~offsets:[ z; z ] t)
  in
  let access = Graph.param_access k in
  Alcotest.(check (list int)) "opaque ptr read" [ 0; 1 ] access.Graph.reads;
  Alcotest.(check (list int)) "opaque ptr written" [ 0; 1 ] access.Graph.writes

(* ------------------------------------------------------------------ *)
(* Dependency planner                                                  *)
(* ------------------------------------------------------------------ *)

let test_demo_wave_shapes () =
  let waves name (d : Gallery.demo) =
    (name, Array.map Array.to_list d.Gallery.d_graph.Graph.waves)
  in
  let name, w = waves "attention" (Gallery.attention_block ()) in
  Alcotest.(check (list (list int)))
    (name ^ " waves")
    [ [ 0; 1; 2 ]; [ 3 ]; [ 4 ] ]
    (Array.to_list w);
  let name, w = waves "splitk" (Gallery.split_k ()) in
  Alcotest.(check (list (list int)))
    (name ^ " waves")
    [ [ 0; 1; 2; 3 ]; [ 4 ] ]
    (Array.to_list w);
  let name, w = waves "moe" (Gallery.moe ()) in
  Alcotest.(check (list (list int))) (name ^ " waves") [ [ 0; 1; 2; 3 ] ]
    (Array.to_list w)

let test_edge_kinds () =
  (* node0 writes r0; node1 reads r0 (RAW), node2 writes r0 after the
     read (WAW vs node0 wins as the stronger reason over WAR vs node1?
     no: vs node0 it's WAW, vs node1 it's WAR — both edges exist). *)
  let edges =
    Graph.infer_edges [| ([], [ 0 ]); ([ 0 ], [ 1 ]); ([], [ 0 ]) |]
  in
  Alcotest.(check bool) "raw edge" true
    (List.mem (0, 1, Graph.Raw) edges);
  Alcotest.(check bool) "waw edge" true
    (List.mem (0, 2, Graph.Waw) edges);
  Alcotest.(check bool) "war edge" true
    (List.mem (1, 2, Graph.War) edges)

(* QCheck: over random read/write programs, the planner never schedules
   a node before its producers — every inferred edge crosses strictly
   forward in wave order — and waves partition the nodes. *)
let arb_program =
  let open QCheck in
  let gen =
    Gen.(
      int_range 1 10 >>= fun n ->
      array_repeat n
        (pair
           (list_size (int_range 0 3) (int_range 0 5))
           (list_size (int_range 0 3) (int_range 0 5))))
  in
  QCheck.make gen ~print:(fun nodes ->
      String.concat "; "
        (Array.to_list
           (Array.map
              (fun (r, w) ->
                Printf.sprintf "r=[%s] w=[%s]"
                  (String.concat "," (List.map string_of_int r))
                  (String.concat "," (List.map string_of_int w)))
              nodes)))

let prop_scheduler_safety =
  QCheck.Test.make ~name:"planner: producers complete before consumers"
    ~count:300 arb_program (fun nodes ->
      let n = Array.length nodes in
      let edges = Graph.infer_edges nodes in
      let wave = Graph.wave_order ~n edges in
      List.for_all (fun (i, j, _) -> i < j && wave.(i) < wave.(j)) edges
      && Array.for_all (fun w -> w >= 0 && w < n) wave)

let prop_program_order_is_serializable =
  (* Running waves in order is equivalent to program order for the
     conflicts the planner tracks: within a wave no two nodes
     conflict. *)
  QCheck.Test.make ~name:"planner: waves are conflict-free" ~count:300
    arb_program (fun nodes ->
      let n = Array.length nodes in
      let edges = Graph.infer_edges nodes in
      let wave = Graph.wave_order ~n edges in
      let conflict i j =
        let ri, wi = nodes.(i) and rj, wj = nodes.(j) in
        let inter a b = List.exists (fun x -> List.mem x b) a in
        inter wi rj || inter wi wj || inter ri wj || inter rj wi
      in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if wave.(i) = wave.(j) && conflict i j then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Graph-vs-serial differential on the demo gallery                    *)
(* ------------------------------------------------------------------ *)

(* Two independent builds of the same demo bind bit-identical inputs
   (fixed seeds); run one through the wave scheduler's replay and the
   other through the serialized reference path, then demand identical
   outputs, per-node cycles, and representative stall profiles. *)
let differential (build : unit -> Gallery.demo) () =
  let demo_g = build () in
  let demo_s = build () in
  let inst_g = Graph.instantiate demo_g.Gallery.d_graph in
  let inst_s = Graph.instantiate demo_s.Gallery.d_graph in
  let run_g = Graph.replay inst_g in
  let run_s = Graph.run_serial inst_s in
  List.iter2
    (fun (name, got) (_, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "output %s bit-identical" name)
        true (Tensor.equal got want))
    demo_g.Gallery.d_outputs demo_s.Gallery.d_outputs;
  Array.iteri
    (fun i (nr_g : Graph.node_result) ->
      let nr_s = run_s.Graph.r_nodes.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "node %s cycles equal" nr_g.Graph.nr_name)
        true (nr_g.Graph.nr_cycles = nr_s.Graph.nr_cycles);
      Alcotest.(check bool)
        (Printf.sprintf "node %s per-CTA cycles equal" nr_g.Graph.nr_name)
        true (nr_g.Graph.nr_cta_cycles = nr_s.Graph.nr_cta_cycles);
      Alcotest.(check bool)
        (Printf.sprintf "node %s outcomes_equal (stats + stall profile)"
           nr_g.Graph.nr_name)
        true
        (outcomes_equal nr_g.Graph.nr_rep nr_s.Graph.nr_rep))
    run_g.Graph.r_nodes;
  (* And both match the CPU reference. *)
  Alcotest.(check bool) "graph outputs match CPU reference" true
    (Gallery.check demo_g < 2e-2)

let test_overlap_model () =
  (* The wave model must beat serialized launches whenever a wave holds
     more than one node within one SM round: fewer launch overheads and
     a max instead of a sum. *)
  let demo = Gallery.attention_block () in
  let inst = Graph.instantiate demo.Gallery.d_graph in
  let run = Graph.replay inst in
  let m = Graph.overlap_model inst run in
  Alcotest.(check bool) "graph cycles < serial cycles" true
    (m.Graph.m_graph_cycles < m.Graph.m_serial_cycles);
  Alcotest.(check bool) "speedup >= 1.3" true (m.Graph.m_speedup >= 1.3);
  Alcotest.(check int) "one wave model per wave" 3 (Array.length m.Graph.m_waves)

let test_trace_has_graph_lane () =
  let demo = Gallery.split_k () in
  let inst = Graph.instantiate demo.Gallery.d_graph in
  let run = Graph.replay inst in
  let events = Graph.trace_events inst run in
  let waves =
    List.filter
      (fun (e : Tawa_obs.Trace.event) ->
        e.Tawa_obs.Trace.cat = "graph" && e.Tawa_obs.Trace.tid = 0)
      events
  in
  Alcotest.(check int) "wave spans on the graph lane" 2 (List.length waves);
  Alcotest.(check bool) "node lanes named" true
    (List.exists
       (fun (e : Tawa_obs.Trace.event) ->
         e.Tawa_obs.Trace.ph = "M" && e.Tawa_obs.Trace.tid > 0)
       events)

(* ------------------------------------------------------------------ *)
(* Replay: idempotent, decode-once                                     *)
(* ------------------------------------------------------------------ *)

let test_replay_decodes_once () =
  let demo = Gallery.attention_block () in
  let inst = Graph.instantiate demo.Gallery.d_graph in
  let first = Graph.replay inst in
  let dec_after_first = Engine.decode_cache_stats () in
  let flow_after_first = Flow.cache_stats () in
  let runs = List.init 3 (fun _ -> Graph.replay inst) in
  let dec_after = Engine.decode_cache_stats () in
  let flow_after = Flow.cache_stats () in
  (* Re-execution is bit-stable... *)
  List.iter
    (fun (r : Graph.run) ->
      Array.iteri
        (fun i (nr : Graph.node_result) ->
          Alcotest.(check bool) "replayed cycles stable" true
            (nr.Graph.nr_cta_cycles
            = first.Graph.r_nodes.(i).Graph.nr_cta_cycles))
        r.Graph.r_nodes)
    runs;
  (* ...and pays no compilation or decoding: both caches see zero new
     lookups of any kind during replay. *)
  Alcotest.(check bool) "no decode-cache traffic during replay" true
    (dec_after = dec_after_first);
  Alcotest.(check bool) "no compile-cache traffic during replay" true
    (flow_after = flow_after_first);
  Alcotest.(check int) "replay count" 4 inst.Graph.replays

(* ------------------------------------------------------------------ *)
(* Tunestore auto-configuration                                        *)
(* ------------------------------------------------------------------ *)

let test_tunestore_autoconfig () =
  let path = Filename.temp_file "tawa_graph_tune" ".tsv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let store = Tunestore.open_ ~name:"graph_test" ~path () in
      (* Warm the store with a tuned winner for the QKV/projection GEMM
         family (D=4, P=3) and nothing for the attention family. *)
      let family =
        Autotune.Gemm { Workloads.m = 64; n = 32; k = 32; dtype = Dtype.F16 }
      in
      let measurement =
        {
          Autotune.candidate =
            {
              Autotune.tiles = { Kernels.block_m = 16; block_n = 16; block_k = 16 };
              aref_depth = 4;
              mma_depth = 3;
              coop = 1;
              persistent = false;
              coarse = false;
              strategy = Flow.Warp_specialized;
            };
          tflops = 1.0;
          cycles = 1.0;
        }
      in
      Tunestore.put store ~key:(Autotune.store_key family)
        (Autotune.encode_measurement measurement);
      let demo = Gallery.attention_block () in
      let inst = Graph.instantiate ~store demo.Gallery.d_graph in
      (* All four GEMM nodes share the family: protocol depths adopt
         the stored winner. *)
      List.iter
        (fun i ->
          Alcotest.(check bool) (Printf.sprintf "node %d tuned" i) true
            (Graph.node_tuned inst i);
          Alcotest.(check int)
            (Printf.sprintf "node %d D" i)
            4
            (Graph.node_options inst i).Flow.aref_depth;
          Alcotest.(check int)
            (Printf.sprintf "node %d P" i)
            3
            (Graph.node_options inst i).Flow.mma_depth)
        [ 0; 1; 2; 4 ];
      (* The attention node's family is cold: untouched. *)
      Alcotest.(check bool) "attention node untuned" false
        (Graph.node_tuned inst 3);
      (* The auto-configured instance still verifies: replay against a
         serial run of the same instance-equivalent build. *)
      let run_g = Graph.replay inst in
      let demo_s = Gallery.attention_block () in
      let inst_s = Graph.instantiate ~store demo_s.Gallery.d_graph in
      let run_s = Graph.run_serial inst_s in
      List.iter2
        (fun (name, got) (_, want) ->
          Alcotest.(check bool)
            (Printf.sprintf "tuned output %s bit-identical" name)
            true (Tensor.equal got want))
        demo.Gallery.d_outputs demo_s.Gallery.d_outputs;
      Array.iteri
        (fun i (nr : Graph.node_result) ->
          Alcotest.(check bool) "tuned cycles equal" true
            (nr.Graph.nr_cycles = run_s.Graph.r_nodes.(i).Graph.nr_cycles))
        run_g.Graph.r_nodes)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "graph.infer",
      [
        Alcotest.test_case "gemm read/write sets" `Quick test_param_access_gemm;
        Alcotest.test_case "attention read/write sets" `Quick
          test_param_access_attention;
        Alcotest.test_case "unclassified pointer is conservative" `Quick
          test_param_access_conservative;
        Alcotest.test_case "demo wave shapes" `Quick test_demo_wave_shapes;
        Alcotest.test_case "edge kinds" `Quick test_edge_kinds;
      ] );
    qsuite "graph.planner.props"
      [ prop_scheduler_safety; prop_program_order_is_serializable ];
    ( "graph.differential",
      [
        Alcotest.test_case "attention block graph == serial" `Quick
          (differential Gallery.attention_block);
        Alcotest.test_case "split-K graph == serial" `Quick
          (differential Gallery.split_k);
        Alcotest.test_case "moe graph == serial" `Quick
          (differential Gallery.moe);
        Alcotest.test_case "overlap model beats serialized launches" `Quick
          test_overlap_model;
        Alcotest.test_case "trace has a graph lane" `Quick
          test_trace_has_graph_lane;
      ] );
    ( "graph.replay",
      [
        Alcotest.test_case "replay is idempotent and decode-once" `Quick
          test_replay_decodes_once;
        Alcotest.test_case "tunestore auto-configures nodes" `Quick
          test_tunestore_autoconfig;
      ] );
  ]
