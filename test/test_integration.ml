(* Cross-cutting integration tests: edge shapes (tail tiles from
   non-divisible K), FP8 attention end-to-end, combined optimization
   stacks, fault injection (missing releases deadlock; the simulator
   says so), and trip-count edge cases for both pipelining styles. *)

open Tawa_tensor
open Tawa_ir
open Tawa_frontend
open Tawa_passes
open Tawa_machine
open Tawa_gpusim

let small_tiles = { Kernels.block_m = 16; block_n = 16; block_k = 8 }
let cfg = Config.functional_test

let compile ?(d = 2) ?(p = 2) ?(coop = 1) ?(persistent = false) ?(coarse = false) kernel =
  Tawa_core.Flow.compile
    ~options:
      { Tawa_core.Flow.default_options with aref_depth = d; mma_depth = p; num_consumer_wgs = coop;
        persistent; use_coarse = coarse }
    kernel

let sim_gemm (c : Tawa_core.Flow.compiled) ~m ~n ~k ~dtype =
  let a = Tensor.random ~dtype ~seed:1 [| m; k |] in
  let b = Tensor.random ~dtype ~seed:2 [| k; n |] in
  let out = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  ignore
    (Launch.run_grid_functional ~cfg c.Tawa_core.Flow.program
       ~params:
         [ Sim.Rtensor a; Sim.Rtensor b; Sim.Rtensor out; Sim.Rint m; Sim.Rint n;
           Sim.Rint k ]
       ~grid:((m + 15) / 16, (n + 15) / 16, 1));
  (out, Reference.gemm ~out_dtype:Dtype.F16 a b)

(* ------------------------------------------------------------------ *)
(* Tail tiles: K not a multiple of block_k                             *)
(* ------------------------------------------------------------------ *)

let test_tail_k_ws () =
  (* K = 20 with block_k = 8: the last iteration's loads run off the
     end; TMA boundary fill must zero-pad and results still match. *)
  List.iter
    (fun kk ->
      let c = compile ~d:2 ~p:2 (Kernels.gemm ~tiles:small_tiles ()) in
      let got, want = sim_gemm c ~m:16 ~n:16 ~k:kk ~dtype:Dtype.F16 in
      Alcotest.(check bool)
        (Printf.sprintf "tail K=%d" kk)
        true
        (Tensor.max_rel_diff got want < 1e-3))
    [ 20; 12; 4; 7 ]

let test_tail_k_sw_pipeline () =
  List.iter
    (fun kk ->
      let kernel = Sw_pipeline.apply ~stages:3 (Kernels.gemm ~tiles:small_tiles ()) in
      let c =
        { (compile kernel) with Tawa_core.Flow.program = Codegen.lower kernel }
      in
      (* compile() would re-run warp specialization; build directly. *)
      let c = { c with Tawa_core.Flow.transformed = kernel } in
      let got, want = sim_gemm c ~m:16 ~n:16 ~k:kk ~dtype:Dtype.F16 in
      Alcotest.(check bool)
        (Printf.sprintf "sw tail K=%d" kk)
        true
        (Tensor.max_rel_diff got want < 1e-3))
    [ 20; 4 ]

let test_short_trip_counts () =
  (* Trip counts below the pipeline depths: D=4, P=3 with only 1-2
     iterations must drain correctly. *)
  List.iter
    (fun kk ->
      let c = compile ~d:4 ~p:3 (Kernels.gemm ~tiles:small_tiles ()) in
      let got, want = sim_gemm c ~m:16 ~n:16 ~k:kk ~dtype:Dtype.F16 in
      Alcotest.(check bool)
        (Printf.sprintf "short trip K=%d" kk)
        true
        (Tensor.max_rel_diff got want < 1e-3))
    [ 8; 16 ]

let test_sw_stages_exceed_trip_count () =
  let kernel = Sw_pipeline.apply ~stages:4 (Kernels.gemm ~tiles:small_tiles ()) in
  Verifier.verify kernel;
  let prog = Codegen.lower kernel in
  let m = 16 and n = 16 and kk = 16 (* 2 iterations < 4 stages *) in
  let a = Tensor.random ~dtype:Dtype.F16 ~seed:1 [| m; kk |] in
  let b = Tensor.random ~dtype:Dtype.F16 ~seed:2 [| kk; n |] in
  let out = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  ignore
    (Launch.run_grid_functional ~cfg prog
       ~params:
         [ Sim.Rtensor a; Sim.Rtensor b; Sim.Rtensor out; Sim.Rint m; Sim.Rint n;
           Sim.Rint kk ]
       ~grid:(1, 1, 1));
  Alcotest.(check bool) "stages > trips" true
    (Tensor.max_rel_diff out (Reference.gemm ~out_dtype:Dtype.F16 a b) < 1e-3)

(* ------------------------------------------------------------------ *)
(* FP8 attention end-to-end                                            *)
(* ------------------------------------------------------------------ *)

let test_fp8_attention_coarse () =
  let l = 32 and d = 8 in
  let kernel =
    Kernels.attention ~block_m:16 ~block_n:16 ~head_dim:d ~dtype:Dtype.F8E4M3 ()
  in
  let c = compile ~d:2 ~p:1 ~coarse:true kernel in
  Alcotest.(check bool) "coarse" true c.Tawa_core.Flow.coarse;
  let q = Tensor.random ~dtype:Dtype.F8E4M3 ~seed:11 [| l; d |] in
  let kt = Tensor.random ~dtype:Dtype.F8E4M3 ~seed:12 [| l; d |] in
  let v = Tensor.random ~dtype:Dtype.F8E4M3 ~seed:13 [| l; d |] in
  let o = Tensor.create ~dtype:Dtype.F16 [| l; d |] in
  ignore
    (Launch.run_grid_functional ~cfg c.Tawa_core.Flow.program
       ~params:[ Sim.Rtensor q; Sim.Rtensor kt; Sim.Rtensor v; Sim.Rtensor o; Sim.Rint l ]
       ~grid:(l / 16, 1, 1));
  let want = Reference.attention ~out_dtype:Dtype.F16 ~q ~k:kt ~v () in
  Alcotest.(check bool) "fp8 coarse attention" true (Tensor.max_rel_diff o want < 5e-2)

(* ------------------------------------------------------------------ *)
(* Combined optimization stack                                         *)
(* ------------------------------------------------------------------ *)

let test_everything_on_at_once () =
  (* WS + fine pipeline + cooperative WGs + persistent, multi-tile
     grid, functional. *)
  let c = compile ~d:3 ~p:2 ~coop:2 ~persistent:true (Kernels.gemm ~tiles:small_tiles ()) in
  Alcotest.(check bool) "persistent program" true
    c.Tawa_core.Flow.program.Isa.persistent;
  let got, want = sim_gemm c ~m:48 ~n:32 ~k:40 ~dtype:Dtype.F16 in
  Alcotest.(check bool) "all-on gemm" true (Tensor.max_rel_diff got want < 1e-3)

let test_persistent_coarse_attention () =
  let l = 48 in
  let kernel = Kernels.attention ~block_m:16 ~block_n:16 ~head_dim:8 ~causal:true () in
  let c = compile ~d:2 ~p:1 ~persistent:true ~coarse:true kernel in
  let q = Tensor.random ~dtype:Dtype.F16 ~seed:31 [| l; 8 |] in
  let kt = Tensor.random ~dtype:Dtype.F16 ~seed:32 [| l; 8 |] in
  let v = Tensor.random ~dtype:Dtype.F16 ~seed:33 [| l; 8 |] in
  let o = Tensor.create ~dtype:Dtype.F16 [| l; 8 |] in
  ignore
    (Launch.run_grid_functional ~cfg c.Tawa_core.Flow.program
       ~params:[ Sim.Rtensor q; Sim.Rtensor kt; Sim.Rtensor v; Sim.Rtensor o; Sim.Rint l ]
       ~grid:(l / 16, 1, 1));
  let want = Reference.attention ~causal:true ~out_dtype:Dtype.F16 ~q ~k:kt ~v () in
  Alcotest.(check bool) "persistent coarse causal attention" true
    (Tensor.max_rel_diff o want < 2e-2)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let test_missing_consumed_deadlocks () =
  (* Strip the consumed ops from a warp-specialized kernel: the
     producer must starve once the ring fills, and the simulator must
     report the deadlock rather than hang or corrupt data. *)
  let spec =
    Partition.warp_specialize
      ~config:{ Partition.aref_depth = 2; num_consumer_wgs = 1 }
      (Kernels.gemm ~tiles:small_tiles ())
  in
  let removed = Hashtbl.create 4 in
  Op.iter_region
    (fun op ->
      if op.Op.opcode = Op.Aref_consumed then Hashtbl.replace removed op.Op.oid ())
    spec.Kernel.body;
  Rewrite.erase_ops spec removed;
  Verifier.verify spec;
  let prog = Codegen.lower spec in
  let m = 16 and n = 16 and kk = 48 (* 6 iterations > D=2: must starve *) in
  let a = Tensor.random ~dtype:Dtype.F16 ~seed:1 [| m; kk |] in
  let b = Tensor.random ~dtype:Dtype.F16 ~seed:2 [| kk; n |] in
  let out = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
  Alcotest.(check bool) "deadlock detected" true
    (try
       ignore
         (Launch.run_grid_functional ~cfg prog
            ~params:
              [ Sim.Rtensor a; Sim.Rtensor b; Sim.Rtensor out; Sim.Rint m; Sim.Rint n;
                Sim.Rint kk ]
            ~grid:(1, 1, 1));
       false
     with Sim.Sim_error msg -> Astring.String.is_infix ~affix:"deadlock" msg)

let test_wrong_arity_params_rejected () =
  let c = compile (Kernels.gemm ~tiles:small_tiles ()) in
  Alcotest.(check bool) "arity mismatch reported" true
    (try
       ignore
         (Launch.run_grid_functional ~cfg c.Tawa_core.Flow.program ~params:[ Sim.Rnone ]
            ~grid:(1, 1, 1));
       false
     with Sim.Sim_error msg -> Astring.String.is_infix ~affix:"arity" msg)

(* ------------------------------------------------------------------ *)
(* Whole-pipeline properties                                           *)
(* ------------------------------------------------------------------ *)

let prop_pipeline_configs_agree =
  (* Any feasible (D, P, coop, persistent) combination computes the
     same GEMM as the sequential interpreter. *)
  QCheck.Test.make ~name:"any (D,P,coop,persistent) agrees with interp" ~count:12
    QCheck.(
      quad (int_range 1 4) (int_range 1 3) (int_range 1 2) bool)
    (fun (d, p, coop, persistent) ->
      QCheck.assume (d >= p);
      let tiles = { Kernels.block_m = 8; block_n = 8; block_k = 8 } in
      let m = 16 and n = 16 and kk = 24 in
      let c = compile ~d ~p ~coop ~persistent (Kernels.gemm ~tiles ()) in
      let a = Tensor.random ~dtype:Dtype.F16 ~seed:1 [| m; kk |] in
      let b = Tensor.random ~dtype:Dtype.F16 ~seed:2 [| kk; n |] in
      let out = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
      ignore
        (Launch.run_grid_functional ~cfg c.Tawa_core.Flow.program
           ~params:
             [ Sim.Rtensor a; Sim.Rtensor b; Sim.Rtensor out; Sim.Rint m; Sim.Rint n;
               Sim.Rint kk ]
           ~grid:(2, 2, 1));
      (* Interpreter golden. *)
      let gold = Tensor.create ~dtype:Dtype.F16 [| m; n |] in
      ignore
        (Interp.run_grid ~grid:(2, 2, 1) (Kernels.gemm ~tiles ())
           [ Interp.RTensor a; Interp.RTensor b; Interp.RTensor gold; Interp.RInt m;
             Interp.RInt n; Interp.RInt kk ]);
      Tensor.max_abs_diff out gold = 0.0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "integration.edges",
      [
        Alcotest.test_case "tail K (ws)" `Quick test_tail_k_ws;
        Alcotest.test_case "tail K (sw pipeline)" `Quick test_tail_k_sw_pipeline;
        Alcotest.test_case "short trip counts" `Quick test_short_trip_counts;
        Alcotest.test_case "stages > trips" `Quick test_sw_stages_exceed_trip_count;
        Alcotest.test_case "fp8 coarse attention" `Quick test_fp8_attention_coarse;
      ] );
    ( "integration.stacks",
      [
        Alcotest.test_case "everything on" `Quick test_everything_on_at_once;
        Alcotest.test_case "persistent coarse attention" `Quick
          test_persistent_coarse_attention;
      ] );
    ( "integration.faults",
      [
        Alcotest.test_case "missing consumed deadlocks" `Quick
          test_missing_consumed_deadlocks;
        Alcotest.test_case "arity mismatch" `Quick test_wrong_arity_params_rejected;
      ] );
    qsuite "integration.props" [ prop_pipeline_configs_agree ];
  ]
