(* Tests for the tawa_obs telemetry subsystem (PR 5): the JSON
   emitter's escaping and pretty-printing, a round-trip smoke against
   the bench trajectory shape, the metric registry, per-pass compiler
   telemetry, aref ring occupancy counters, the Chrome trace export,
   and — the load-bearing part — differential tests pinning stall
   attribution and channel occupancy to be bit-identical between the
   reference and decoded engines on compiled kernels. *)

open Tawa_machine
open Tawa_gpusim
module Flow = Tawa_core.Flow
module Json = Tawa_obs.Json
module Registry = Tawa_obs.Registry
module Stall = Tawa_obs.Stall
module Trace = Tawa_obs.Trace

(* ------------------------------------------------------------------ *)
(* A minimal JSON validity checker (recursive descent over the grammar;
   accepts exactly well-formed JSON). Only used to assert that
   everything we emit parses — no value reconstruction.               *)
(* ------------------------------------------------------------------ *)

exception Bad

let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else raise Bad
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l else raise Bad
  in
  let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false in
  let parse_string () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> raise Bad
      | Some '"' ->
        advance ();
        closed := true
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some c when is_hex c -> advance ()
            | _ -> raise Bad
          done
        | _ -> raise Bad)
      | Some c when Char.code c < 0x20 -> raise Bad
      | Some _ -> advance ()
    done
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then raise Bad
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    if !pos = start then raise Bad
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> raise Bad
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> raise Bad
        in
        elements ()
      end
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some _ -> parse_number ()
    | None -> raise Bad
  in
  try
    parse_value ();
    skip_ws ();
    !pos = n
  with Bad -> false

(* ------------------------------------------------------------------ *)
(* Json emitter                                                        *)
(* ------------------------------------------------------------------ *)

let test_json_escape () =
  let out = Json.to_string (Json.Str "a\"b\\c\nd\te\rf\x01g") in
  Alcotest.(check string)
    "control and quote escapes" "\"a\\\"b\\\\c\\nd\\te\\rf\\u0001g\"\n" out;
  (* Multi-byte UTF-8 passes through unescaped (JSON strings are
     unicode text). *)
  let eacute = "caf\xc3\xa9" in
  Alcotest.(check string) "utf-8 passthrough" ("\"" ^ eacute ^ "\"\n")
    (Json.to_string (Json.Str eacute));
  Alcotest.(check bool) "escaped string parses" true
    (json_valid (String.trim (Json.to_string (Json.Str "a\"b\\c\nd\x02"))))

let test_json_nonfinite () =
  Alcotest.(check string) "nan is null" "null\n" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null\n"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "-inf is null" "null\n"
    (Json.to_string (Json.Float Float.neg_infinity));
  let doc = Json.Obj [ ("a", Json.Float Float.nan); ("b", Json.Float 1.5) ] in
  Alcotest.(check bool) "doc with non-finite floats parses" true
    (json_valid (String.trim (Json.to_string doc)))

let test_json_nested () =
  let doc =
    Json.Obj
      [ ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
        ("nested", Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Bool false; Json.Null ]) ]);
      ]
  in
  let out = Json.to_string doc in
  Alcotest.(check bool) "nested doc parses" true (json_valid (String.trim out));
  (* Two-space indentation per object level. *)
  Alcotest.(check bool) "inner keys indented" true
    (Astring.String.is_infix ~affix:"  \"nested\": {\n    \"xs\": [1, false, null]" out)

(* The shape written by `bench --json` (schema, figures list, caches,
   telemetry). Rendering it must produce valid JSON even with hostile
   strings and non-finite floats in the leaves. *)
let test_json_bench_shape () =
  let doc =
    Json.Obj
      [ ("schema", Json.Str "tawa-bench-trajectory/v1");
        ("pr", Json.Int 4);
        ( "figures",
          Json.List
            [ Json.Obj
                [ ("name", Json.Str "fig\"8\\weird\n");
                  ("reference_seconds", Json.Float 1.25);
                  ("engine_speedup", Json.Float Float.infinity);
                  ("data", Json.Null);
                ]
            ] );
        ( "compile_cache",
          Json.Obj
            [ ("hits", Json.Int 10); ("misses", Json.Int 3); ("evictions", Json.Int 0) ] );
        ("telemetry", Json.Obj [ ("pool.domains_spawned", Json.Int 0) ]);
      ]
  in
  Alcotest.(check bool) "bench-shaped doc parses" true
    (json_valid (String.trim (Json.to_string doc)))

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let lookup name snap =
  match List.assoc_opt name snap with
  | Some v -> v
  | None -> Alcotest.failf "metric %s missing from snapshot" name

let test_registry_counters () =
  Registry.incr "test.obs.counter";
  Registry.incr ~by:41 "test.obs.counter";
  Registry.set_float "test.obs.cell" 2.5;
  Registry.max_float "test.obs.cell" 1.0 (* lower: no-op *);
  Registry.observe "test.obs.timer" 0.25;
  Registry.observe "test.obs.timer" 0.50;
  Registry.register_gauge "test.obs.gauge" (fun () -> Registry.Str "hello");
  let snap = Registry.snapshot () in
  Alcotest.(check bool) "counter" true (lookup "test.obs.counter" snap = Registry.Int 42);
  Alcotest.(check bool) "cell" true (lookup "test.obs.cell" snap = Registry.Float 2.5);
  Alcotest.(check bool) "timer total" true
    (lookup "test.obs.timer.seconds" snap = Registry.Float 0.75);
  Alcotest.(check bool) "timer calls" true
    (lookup "test.obs.timer.calls" snap = Registry.Int 2);
  Alcotest.(check bool) "gauge" true (lookup "test.obs.gauge" snap = Registry.Str "hello");
  (* Snapshot is name-sorted. *)
  let names = List.map fst snap in
  Alcotest.(check bool) "sorted" true (List.sort String.compare names = names);
  (* Rendered forms parse / contain the metrics. *)
  Alcotest.(check bool) "to_json parses" true
    (json_valid (String.trim (Json.to_string (Registry.to_json ()))));
  Alcotest.(check bool) "to_table mentions counter" true
    (Astring.String.is_infix ~affix:"test.obs.counter" (Registry.to_table ()));
  (* Reset zeroes counters/cells/timers but keeps gauges installed. *)
  Registry.reset ();
  let snap = Registry.snapshot () in
  Alcotest.(check bool) "counter reset" true
    (lookup "test.obs.counter" snap = Registry.Int 0);
  Alcotest.(check bool) "gauge survives reset" true
    (lookup "test.obs.gauge" snap = Registry.Str "hello");
  Registry.unregister "test.obs.gauge";
  Alcotest.(check bool) "unregistered" true
    (List.assoc_opt "test.obs.gauge" (Registry.snapshot ()) = None)

let test_registry_time () =
  Registry.unregister "test.obs.timed";
  let r = Registry.time "test.obs.timed" (fun () -> 7) in
  Alcotest.(check int) "result threads through" 7 r;
  (match List.assoc_opt "test.obs.timed.calls" (Registry.snapshot ()) with
  | Some (Registry.Int 1) -> ()
  | _ -> Alcotest.fail "timer not recorded");
  (* Exceptions still record the observation. *)
  (try Registry.time "test.obs.timed" (fun () -> failwith "boom") with Failure _ -> ());
  match List.assoc_opt "test.obs.timed.calls" (Registry.snapshot ()) with
  | Some (Registry.Int 2) -> ()
  | _ -> Alcotest.fail "exceptional timer not recorded"

let test_registry_progcache_gauges () =
  let c : int Tawa_machine.Progcache.t =
    Tawa_machine.Progcache.create ~name:"test-obs" ~max_entries:2 ()
  in
  ignore (Tawa_machine.Progcache.find_or_add c ~key:"a" (fun () -> 1));
  ignore (Tawa_machine.Progcache.find_or_add c ~key:"a" (fun () -> 1));
  ignore (Tawa_machine.Progcache.find_or_add c ~key:"b" (fun () -> 2));
  ignore (Tawa_machine.Progcache.find_or_add c ~key:"c" (fun () -> 3));
  let s = Tawa_machine.Progcache.stats c in
  Alcotest.(check int) "hits" 1 s.Tawa_machine.Progcache.hits;
  Alcotest.(check int) "misses" 3 s.Tawa_machine.Progcache.misses;
  Alcotest.(check int) "evictions" 2 s.Tawa_machine.Progcache.evictions;
  let snap = Registry.snapshot () in
  Alcotest.(check bool) "hits gauge" true
    (lookup "progcache.test-obs.hits" snap = Registry.Int 1);
  Alcotest.(check bool) "evictions gauge" true
    (lookup "progcache.test-obs.evictions" snap = Registry.Int 2);
  (* The long-lived caches registered at module init are visible too. *)
  Alcotest.(check bool) "flow.compile cache registered" true
    (List.assoc_opt "progcache.flow.compile.hits" snap <> None);
  Alcotest.(check bool) "engine.decode cache registered" true
    (List.assoc_opt "progcache.engine.decode.hits" snap <> None);
  Alcotest.(check bool) "pool gauge registered" true
    (List.assoc_opt "pool.domains_spawned" snap <> None);
  List.iter
    (fun f -> Registry.unregister ("progcache.test-obs." ^ f))
    [ "hits"; "misses"; "evictions"; "entries" ]

(* ------------------------------------------------------------------ *)
(* Pass-pipeline telemetry                                             *)
(* ------------------------------------------------------------------ *)

let test_pass_telemetry () =
  let tiles = { Tawa_frontend.Kernels.block_m = 16; block_n = 16; block_k = 8 } in
  let kernel = Tawa_frontend.Kernels.gemm ~tiles () in
  let r = Tawa_passes.Manager.compile kernel in
  Alcotest.(check bool) "trace nonempty" true (r.Tawa_passes.Manager.trace <> []);
  List.iter
    (fun (t : Tawa_passes.Manager.trace_entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "pass %s wall time non-negative" t.Tawa_passes.Manager.pass)
        true
        (t.Tawa_passes.Manager.ms >= 0.0);
      Alcotest.(check bool)
        (Printf.sprintf "pass %s op count consistent" t.Tawa_passes.Manager.pass)
        true
        (t.Tawa_passes.Manager.ops_after >= 0))
    r.Tawa_passes.Manager.trace;
  (* Deltas telescope: summing them recovers final minus initial ops. *)
  let final = List.rev r.Tawa_passes.Manager.trace |> List.hd in
  let initial_ops =
    final.Tawa_passes.Manager.ops_after
    - List.fold_left
        (fun acc (t : Tawa_passes.Manager.trace_entry) ->
          acc + t.Tawa_passes.Manager.ops_delta)
        0 r.Tawa_passes.Manager.trace
  in
  Alcotest.(check int) "deltas telescope to the input op count" initial_ops
    (Tawa_ir.Kernel.count_ops kernel);
  (* Per-pass timers landed in the registry. *)
  let snap = Registry.snapshot () in
  Alcotest.(check bool) "canonicalize timer registered" true
    (List.assoc_opt "passes.canonicalize.calls" snap <> None);
  Alcotest.(check bool) "warp-specialize timer registered" true
    (List.assoc_opt "passes.warp-specialize.calls" snap <> None)

(* ------------------------------------------------------------------ *)
(* Ring occupancy counters                                             *)
(* ------------------------------------------------------------------ *)

let test_ring_stats () =
  let open Tawa_aref in
  let r : int Ring.t = Ring.create ~depth:2 in
  (match Ring.put r ~iter:0 10 with Semantics.Ok () -> () | _ -> Alcotest.fail "put 0");
  (match Ring.put r ~iter:1 11 with Semantics.Ok () -> () | _ -> Alcotest.fail "put 1");
  (* Ring full: producing iteration 2 blocks and is counted. *)
  (match Ring.put r ~iter:2 12 with
  | Semantics.Blocked -> ()
  | _ -> Alcotest.fail "put 2 should block");
  (match Ring.get r ~iter:0 with Semantics.Ok 10 -> () | _ -> Alcotest.fail "get 0");
  (match Ring.consumed r ~iter:0 with Semantics.Ok () -> () | _ -> Alcotest.fail "rel 0");
  (* Consuming before the producer published blocks and is counted. *)
  (match Ring.get r ~iter:2 with
  | Semantics.Blocked -> ()
  | _ -> Alcotest.fail "get 2 should block");
  let s = Ring.stats r in
  Alcotest.(check int) "puts" 2 s.Ring.puts;
  Alcotest.(check int) "gets" 1 s.Ring.gets;
  Alcotest.(check int) "put_blocked" 1 s.Ring.put_blocked;
  Alcotest.(check int) "get_blocked" 1 s.Ring.get_blocked;
  Alcotest.(check int) "max occupancy hit the full depth" 2 s.Ring.max_occupancy;
  Alcotest.(check int) "current occupancy" 1 (Ring.occupancy r)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

let test_trace_export () =
  let intervals =
    [ ("WG0", 0.0, 10.0, "compute"); ("TMA", 2.0, 8.0, "tma(0)");
      ("WG0", 10.0, 12.0, "stall(mbar)"); ("TC", 5.0, 9.0, "wgmma");
    ]
  in
  let events = Trace.of_intervals intervals in
  let units = [ "WG0"; "TMA"; "TC" ] in
  (* One thread-name metadata record per distinct unit... *)
  List.iter
    (fun u ->
      Alcotest.(check bool)
        (Printf.sprintf "metadata for %s" u)
        true
        (List.exists
           (fun (e : Trace.event) ->
             e.Trace.ph = "M" && e.Trace.args = [ ("name", Json.Str u) ])
           events))
    units;
  (* ...and at least one complete event per unit: resolve each unit's
     tid from its metadata record, then look for an "X" on that tid. *)
  List.iter
    (fun u ->
      let tid =
        match
          List.find_opt
            (fun (e : Trace.event) ->
              e.Trace.ph = "M" && e.Trace.args = [ ("name", Json.Str u) ])
            events
        with
        | Some e -> e.Trace.tid
        | None -> Alcotest.failf "no metadata for %s" u
      in
      Alcotest.(check bool)
        (Printf.sprintf "complete event for %s" u)
        true
        (List.exists
           (fun (e : Trace.event) -> e.Trace.ph = "X" && e.Trace.tid = tid)
           events))
    units;
  let out = Json.to_string (Trace.to_json events) in
  Alcotest.(check bool) "trace JSON parses" true (json_valid (String.trim out));
  Alcotest.(check bool) "traceEvents key present" true
    (Astring.String.is_infix ~affix:"\"traceEvents\"" out)

(* A real kernel end to end: trace one CTA under the oracle and check
   every active unit contributed at least one complete event. *)
let test_trace_from_sim () =
  let tiles = { Tawa_frontend.Kernels.block_m = 16; block_n = 16; block_k = 8 } in
  let compiled =
    Flow.compile
      ~options:
        { Flow.default_options with aref_depth = 2; mma_depth = 1; num_consumer_wgs = 1; persistent = false;
          use_coarse = false }
      (Tawa_frontend.Kernels.gemm ~tiles ())
  in
  let cfg = { Config.h100 with Config.collect_trace = true } in
  let cta =
    Sim.create ~cfg ~program:compiled.Flow.program
      ~params:[ Sim.Rnone; Sim.Rnone; Sim.Rnone; Sim.Rint 32; Sim.Rint 32; Sim.Rint 16 ]
      ~num_programs:[| 2; 2; 1 |]
      ~pop_global:(fun () -> -1) ()
  in
  ignore (Sim.run cta);
  let events = Trace.of_intervals (List.rev cta.Sim.events) in
  let complete = List.filter (fun (e : Trace.event) -> e.Trace.ph = "X") events in
  let meta = List.filter (fun (e : Trace.event) -> e.Trace.ph = "M") events in
  Alcotest.(check bool) "some complete events" true (List.length complete > 0);
  Alcotest.(check bool) "several units active" true (List.length meta >= 2);
  List.iter
    (fun (m : Trace.event) ->
      Alcotest.(check bool) "every named unit has a complete event" true
        (List.exists (fun (e : Trace.event) -> e.Trace.tid = m.Trace.tid) complete))
    meta;
  Alcotest.(check bool) "sim trace JSON parses" true
    (json_valid (String.trim (Json.to_string (Trace.to_json events))))

(* ------------------------------------------------------------------ *)
(* Stall attribution: engines agree bit for bit on compiled kernels    *)
(* ------------------------------------------------------------------ *)

let profiles_equal (a : Sim.profile) (b : Sim.profile) =
  a.Sim.wall = b.Sim.wall
  && a.Sim.wg_profs = b.Sim.wg_profs
  && a.Sim.chan_profs = b.Sim.chan_profs

let estimate engine (compiled : Flow.compiled) ~params ~grid ~flops =
  Launch.estimate
    ~cfg:{ Config.h100 with Config.engine = Some engine }
    compiled.Flow.program ~params ~grid ~flops

let check_profile_diff name (compiled : Flow.compiled) ~params ~grid =
  let r = estimate Config.Reference compiled ~params ~grid ~flops:1e6 in
  let d = estimate Config.Decoded compiled ~params ~grid ~flops:1e6 in
  Alcotest.(check (float 0.0)) (name ^ ": cycles identical") r.Launch.cycles d.Launch.cycles;
  match (r.Launch.profile, d.Launch.profile) with
  | Some pr, Some pd ->
    Alcotest.(check bool)
      (name ^ ": stall attribution and channel occupancy bit-identical") true
      (profiles_equal pr pd);
    (* The acceptance invariant: every WG's bucket sum equals the CTA's
       total simulated cycles (idle closes the gap). *)
    Array.iter
      (fun (w : Sim.wg_prof) ->
        let sum = Array.fold_left ( +. ) 0.0 w.Sim.p_buckets in
        Alcotest.(check bool)
          (Printf.sprintf "%s: WG%d bucket sum %.3f ~ wall %.3f" name w.Sim.p_index sum
             pr.Sim.wall)
          true
          (Float.abs (sum -. pr.Sim.wall) <= 1e-6 *. Float.max 1.0 pr.Sim.wall))
      pr.Sim.wg_profs
  | _ -> Alcotest.fail (name ^ ": profile missing")

let gemm_params ~m ~n ~kk =
  [ Sim.Rnone; Sim.Rnone; Sim.Rnone; Sim.Rint m; Sim.Rint n; Sim.Rint kk ]

let ws_gemm ?(persistent = false) ?(coop = 1) ?(d = 2) ?(p = 1) () =
  let tiles = { Tawa_frontend.Kernels.block_m = 16; block_n = 16; block_k = 8 } in
  Flow.compile
    ~options:
      { Flow.default_options with aref_depth = d; mma_depth = p; num_consumer_wgs = coop; persistent;
        use_coarse = false }
    (Tawa_frontend.Kernels.gemm ~tiles ())

let test_profile_diff_gemm () =
  check_profile_diff "ws gemm" (ws_gemm ())
    ~params:(gemm_params ~m:32 ~n:32 ~kk:16)
    ~grid:(2, 2, 1);
  check_profile_diff "sw-pipelined gemm"
    (Flow.compile_sw_pipelined ~stages:3
       (Tawa_frontend.Kernels.gemm
          ~tiles:{ Tawa_frontend.Kernels.block_m = 16; block_n = 16; block_k = 8 }
          ()))
    ~params:(gemm_params ~m:32 ~n:32 ~kk:16)
    ~grid:(2, 2, 1);
  check_profile_diff "coop gemm" (ws_gemm ~coop:2 ())
    ~params:(gemm_params ~m:32 ~n:32 ~kk:16)
    ~grid:(2, 2, 1)

let test_profile_diff_attention () =
  let compiled =
    Flow.compile
      ~options:
        { Flow.default_options with aref_depth = 2; mma_depth = 1; num_consumer_wgs = 1; persistent = false;
          use_coarse = true }
      (Tawa_frontend.Kernels.attention ~block_m:16 ~block_n:16 ~head_dim:8 ())
  in
  check_profile_diff "coarse attention" compiled
    ~params:[ Sim.Rnone; Sim.Rnone; Sim.Rnone; Sim.Rnone; Sim.Rint 32 ]
    ~grid:(2, 1, 1)

let test_profile_diff_persistent () =
  check_profile_diff "persistent gemm"
    (ws_gemm ~persistent:true ())
    ~params:(gemm_params ~m:32 ~n:32 ~kk:16)
    ~grid:(2, 2, 1)

(* Property: over compile knobs, per-WG bucket sums equal the CTA
   wall-clock, so the grand total is wall x WG count (fp tolerance:
   the sums re-add per-instruction float increments). *)
let prop_bucket_sums =
  QCheck.Test.make ~name:"bucket sums equal wall-clock x WG count" ~count:15
    QCheck.(
      quad (int_range 1 3) (int_range 1 2) (int_range 1 3) QCheck.bool)
    (fun (d, p, trip, persistent) ->
      let compiled = ws_gemm ~persistent ~d ~p () in
      let t =
        estimate Config.Decoded compiled
          ~params:(gemm_params ~m:32 ~n:32 ~kk:(trip * 8))
          ~grid:(2, 2, 1) ~flops:1e6
      in
      match t.Launch.profile with
      | None -> false
      | Some prof ->
        let tol = 1e-6 *. Float.max 1.0 prof.Sim.wall in
        let per_wg_ok =
          Array.for_all
            (fun (w : Sim.wg_prof) ->
              Float.abs (Array.fold_left ( +. ) 0.0 w.Sim.p_buckets -. prof.Sim.wall)
              <= tol)
            prof.Sim.wg_profs
        in
        let total =
          Array.fold_left
            (fun acc (w : Sim.wg_prof) ->
              acc +. Array.fold_left ( +. ) 0.0 w.Sim.p_buckets)
            0.0 prof.Sim.wg_profs
        in
        let n = Float.of_int (Array.length prof.Sim.wg_profs) in
        per_wg_ok
        && Float.abs (total -. (prof.Sim.wall *. n)) <= n *. tol)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "obs.json",
      [
        Alcotest.test_case "string escaping" `Quick test_json_escape;
        Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
        Alcotest.test_case "nested pretty-printing" `Quick test_json_nested;
        Alcotest.test_case "bench trajectory shape" `Quick test_json_bench_shape;
      ] );
    ( "obs.registry",
      [
        Alcotest.test_case "counters, timers, gauges" `Quick test_registry_counters;
        Alcotest.test_case "time wrapper" `Quick test_registry_time;
        Alcotest.test_case "progcache + pool gauges" `Quick test_registry_progcache_gauges;
        Alcotest.test_case "pass-pipeline telemetry" `Quick test_pass_telemetry;
        Alcotest.test_case "ring occupancy stats" `Quick test_ring_stats;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "interval conversion" `Quick test_trace_export;
        Alcotest.test_case "simulated CTA trace" `Quick test_trace_from_sim;
      ] );
    ( "obs.attribution",
      [
        Alcotest.test_case "gemm: engines agree" `Quick test_profile_diff_gemm;
        Alcotest.test_case "attention: engines agree" `Quick test_profile_diff_attention;
        Alcotest.test_case "persistent: engines agree" `Quick test_profile_diff_persistent;
      ]
      @ qsuite [ prop_bucket_sums ] );
  ]
